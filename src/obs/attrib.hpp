/**
 * @file
 * Kernel-level cost attribution: join the *measured* prover telemetry
 * (ProfileRegion spans in the trace ring, with per-span modmul/byte
 * deltas in SpanEvent::args) with the *modeled* side (the chip model's
 * per-kernel cycle breakdown for the identical job) and quantify how
 * far the software runtime distribution has drifted from the paper's
 * accelerator model.
 *
 * The join runs per job: a prover span belongs to the job whose
 * correlation id its ancestor chain carries (ProfileRegion spans nest
 * under the service's `prove.prove` span, which is tagged with the
 * request id), and the modeled side is one ModeledJob per replayed
 * trace entry with the same id (`sim::attrib_jobs` adapts a
 * ReplayReport; this header stays sim-free so the engine sits in the
 * bottom-layer obs library and is testable with synthetic data).
 *
 * Measured and modeled kernels use different name vocabularies
 * (ProfileRegion names are the paper's Table-1 rows; ChipReport
 * kernel_cycles keys are the Fig-10 units), so the join goes through a
 * fixed many-to-many *attribution group* table (kGroups in attrib.cpp,
 * documented in DESIGN.md §13). Per group the engine produces the
 * software Table-1/Fig-12 twin: measured seconds and modmuls, modeled
 * cycles, share-of-runtime on each side, and
 *
 *   drift_ratio = measured_share / modeled_share
 *
 * — 1.0 means the software spends the same fraction of its runtime in
 * that kernel as the modeled chip does; large or vanishing values mean
 * the model and the implementation have diverged (or the
 * instrumentation broke). Results export as registry gauges
 * (`zkspeed_model_drift_ratio{kernel=...}`,
 * `zkspeed_kernel_modmuls_per_byte{kernel=...}`) and as the
 * machine-readable ATTRIB_report.json; bench_attrib gates CI on the
 * drift bounds in bench/baselines.json.
 */
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace zkspeed::obs::attrib {

/** Modeled cost of one replayed prove job (sim::attrib_jobs builds
 * these from a ReplayReport; tests hand-build them). */
struct ModeledJob {
    /** Request id recorded with the runtime trace entry; joins against
     * the correlation id on the job's spans. 0 never joins. */
    uint64_t job_id = 0;
    uint32_t mu = 0;
    double sw_ms = 0;    ///< measured software prove time
    double chip_ms = 0;  ///< modeled chip latency
    uint64_t total_cycles = 0;
    /** ChipReport::kernel_cycles, flattened (modeled kernel names). */
    std::vector<std::pair<std::string, uint64_t>> kernel_cycles;
    /** ChipReport::step_cycles, flattened (protocol step names). */
    std::vector<std::pair<std::string, uint64_t>> step_cycles;
};

/** One attribution group: measured vs modeled cost of one kernel. */
struct KernelRow {
    std::string kernel;  ///< attribution group name
    double measured_seconds = 0;
    uint64_t measured_modmuls = 0;
    uint64_t measured_bytes = 0;  ///< declared logical bytes, in + out
    uint64_t calls = 0;           ///< measured spans folded in
    uint64_t modeled_cycles = 0;
    double measured_share = 0;  ///< of the joined measured seconds
    double modeled_share = 0;   ///< of the joined modeled cycles
    /** measured_share / modeled_share (0 when either side is empty). */
    double drift_ratio = 0;
    /** Table-1 arithmetic intensity from live counters. */
    double modmuls_per_byte = 0;
    /** measured seconds / modeled seconds at Options::clock_ghz — how
     * much faster the modeled chip runs this kernel than the host. */
    double implied_speedup = 0;
};

/** Per-job drill-down: the same rows scoped to one joined job. */
struct JobRow {
    uint64_t job_id = 0;
    uint32_t mu = 0;
    double sw_ms = 0;
    double chip_ms = 0;
    std::vector<KernelRow> kernels;
};

struct Report {
    double clock_ghz = 1.0;
    /** Aggregate rows over every joined job, one per group with any
     * measured or modeled cost, sorted by descending modeled cycles. */
    std::vector<KernelRow> kernels;
    std::vector<JobRow> jobs;

    double measured_total_seconds = 0;  ///< joined prover spans
    uint64_t modeled_total_cycles = 0;  ///< joined modeled kernels
    size_t jobs_joined = 0;
    /** Modeled jobs whose spans never made it into the ring (evicted,
     * or tracing was off) — their cycles are excluded from the join. */
    size_t jobs_modeled_only = 0;
    /** Job ids seen on prover spans with no modeled counterpart (stale
     * spans from earlier suites in the same process). */
    size_t jobs_measured_only = 0;
    size_t spans_seen = 0;    ///< prover spans inside the time window
    size_t spans_joined = 0;  ///< ... that joined a modeled job
    /** Measured prover kernel names with no attribution group — always
     * empty unless a new ProfileRegion was added without extending the
     * group table (bench_attrib fails CI on it). */
    std::vector<std::string> unmapped_kernels;
};

struct Options {
    /** Ignore spans that started before this recorder timestamp (µs
     * since the trace epoch) — scopes the join to one harness run in a
     * process whose global ring accumulates across suites. */
    double min_ts_us = 0;
    /** Modeled clock, for cycles -> seconds (sim::kClockGhz = 1.0). */
    double clock_ghz = 1.0;
};

/**
 * Join measured spans with modeled jobs. `events` is a trace-ring dump
 * (TraceRecorder::events()); prover spans resolve their job id through
 * the parent chain, so the dump must contain the enclosing service
 * spans for the join to land.
 */
Report build(const std::vector<SpanEvent> &events,
             const std::vector<ModeledJob> &jobs,
             const Options &opts = Options());

/** Export the aggregate rows as registry gauges:
 *  zkspeed_model_drift_ratio{kernel=...} and
 *  zkspeed_kernel_modmuls_per_byte{kernel=...}. */
void export_to_registry(const Report &report, MetricsRegistry &reg);

/** Render ATTRIB_report.json (schema "zkspeed-attrib-v1"). */
std::string render_json(const Report &report);

/** Strict parse of render_json output: unknown or missing fields fail
 * (the schema round-trip test pins the format). */
std::optional<Report> parse_json(const std::string &text);

/** The measured ProfileRegion names the group table recognises (used
 * by tests to keep the table in lockstep with the prover). */
std::vector<std::string> known_measured_kernels();

}  // namespace zkspeed::obs::attrib
