/**
 * @file
 * Fixed-base scalar multiplication with windowed precomputation.
 *
 * Setup-time helper: generating an SRS requires thousands of scalar
 * multiplications of the same base point; an 8-bit windowed table turns
 * each into ~32 mixed additions.
 */
#pragma once

#include <vector>

#include "curve/g1.hpp"

namespace zkspeed::curve {

class FixedBaseTable
{
  public:
    static constexpr unsigned kWindowBits = 8;

    explicit FixedBaseTable(const G1 &base)
    {
        const unsigned windows =
            (ff::Fr::kBits + kWindowBits - 1) / kWindowBits;
        const size_t entries = size_t(1) << kWindowBits;
        std::vector<G1> jac;
        jac.reserve(windows * entries);
        G1 win_base = base;
        for (unsigned w = 0; w < windows; ++w) {
            G1 acc = G1::identity();
            for (size_t d = 0; d < entries; ++d) {
                jac.push_back(acc);
                acc += win_base;
            }
            win_base = acc;  // base << kWindowBits
        }
        table_ = batch_to_affine<G1Params>(jac);
        windows_ = windows;
    }

    /** Compute k * base. */
    G1
    mul(const ff::Fr &k) const
    {
        ff::Fr::Repr r = k.to_repr();
        G1 acc = G1::identity();
        const size_t entries = size_t(1) << kWindowBits;
        for (unsigned w = 0; w < windows_; ++w) {
            unsigned off = w * kWindowBits;
            uint64_t d = (r.limbs[off / 64] >> (off % 64)) &
                         (entries - 1);
            if (off % 64 + kWindowBits > 64 && off / 64 + 1 < ff::Fr::kLimbs) {
                d |= (r.limbs[off / 64 + 1] << (64 - off % 64)) &
                     (entries - 1);
            }
            if (d != 0) acc = acc.add_mixed(table_[w * entries + d]);
        }
        return acc;
    }

  private:
    std::vector<G1Affine> table_;
    unsigned windows_ = 0;
};

}  // namespace zkspeed::curve
