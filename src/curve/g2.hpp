/**
 * @file
 * The BLS12-381 G2 group: E'(Fq2) with y^2 = x^3 + 4(u+1).
 *
 * G2 carries the verifier side of the multilinear-KZG commitment: the
 * universal setup publishes h^{tau_i} in G2 and opening verification pairs
 * quotient commitments against them.
 */
#pragma once

#include "curve/fq2.hpp"
#include "curve/point.hpp"

namespace zkspeed::curve {

struct G2Params {
    using Field = Fq2;

    /** Curve constant b' = 4(u + 1). */
    static Field
    b()
    {
        static const Field kB(ff::Fq::from_uint(4), ff::Fq::from_uint(4));
        return kB;
    }

    /** The standard BLS12-381 G2 generator. */
    static AffinePoint<G2Params> generator();
};

using G2Affine = AffinePoint<G2Params>;
using G2 = JacobianPoint<G2Params>;

inline G2
g2_generator()
{
    return G2::from_affine(G2Params::generator());
}

}  // namespace zkspeed::curve
