/**
 * @file
 * Short-Weierstrass curve points (y^2 = x^3 + b, a = 0) in affine and
 * Jacobian coordinates, templated over the coordinate field.
 *
 * Both BLS12-381 groups use a = 0, so the fast a=0 doubling applies. The
 * Jacobian point addition (PADD) is the unit the zkSpeed MSM pipeline is
 * built around (paper Section 4.2); the formula costs counted by the
 * modmul counters are what the Table-1 bench measures.
 */
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "ff/batch_inverse.hpp"
#include "ff/fr.hpp"

namespace zkspeed::curve {

template <typename Params>
struct JacobianPoint;

/**
 * Affine point. The additive identity is represented by the infinity flag.
 *
 * @tparam Params curve policy providing:
 *   - using Field (coordinate field)
 *   - static Field b() (curve constant)
 *   - static AffinePoint<Params> generator()
 */
template <typename Params>
struct AffinePoint {
    using Field = typename Params::Field;

    Field x{};
    Field y{};
    bool infinity = true;

    constexpr AffinePoint() = default;
    AffinePoint(const Field &x_, const Field &y_)
        : x(x_), y(y_), infinity(false)
    {}

    static AffinePoint identity() { return AffinePoint(); }
    bool is_identity() const { return infinity; }

    bool
    operator==(const AffinePoint &o) const
    {
        if (infinity || o.infinity) return infinity == o.infinity;
        return x == o.x && y == o.y;
    }

    AffinePoint
    neg() const
    {
        AffinePoint r = *this;
        if (!r.infinity) r.y = -r.y;
        return r;
    }

    /** Curve membership: y^2 == x^3 + b. */
    bool
    is_on_curve() const
    {
        if (infinity) return true;
        return y.square() == x.square() * x + Params::b();
    }

    JacobianPoint<Params> to_jacobian() const;
};

/**
 * Jacobian point (X, Y, Z) representing affine (X/Z^2, Y/Z^3); Z = 0 is
 * the identity.
 */
template <typename Params>
struct JacobianPoint {
    using Field = typename Params::Field;
    using Affine = AffinePoint<Params>;

    Field X{};
    Field Y{};
    Field Z{};

    static JacobianPoint
    identity()
    {
        JacobianPoint p;
        p.X = Field::one();
        p.Y = Field::one();
        p.Z = Field::zero();
        return p;
    }

    bool is_identity() const { return Z.is_zero(); }

    static JacobianPoint
    from_affine(const Affine &a)
    {
        if (a.infinity) return identity();
        JacobianPoint p;
        p.X = a.x;
        p.Y = a.y;
        p.Z = Field::one();
        return p;
    }

    /** Normalize to affine coordinates (one field inversion). */
    Affine
    to_affine() const
    {
        if (is_identity()) return Affine::identity();
        Field zinv = Z.inverse();
        Field zinv2 = zinv.square();
        return Affine(X * zinv2, Y * zinv2 * zinv);
    }

    JacobianPoint
    neg() const
    {
        JacobianPoint r = *this;
        r.Y = -r.Y;
        return r;
    }

    /** Point doubling, a = 0 (dbl-2009-l). */
    JacobianPoint
    dbl() const
    {
        if (is_identity()) return *this;
        Field a = X.square();
        Field b = Y.square();
        Field c = b.square();
        Field d = ((X + b).square() - a - c).dbl();
        Field e = a + a + a;
        Field f = e.square();
        JacobianPoint r;
        r.X = f - d.dbl();
        r.Y = e * (d - r.X) - c.dbl().dbl().dbl();
        r.Z = (Y * Z).dbl();
        return r;
    }

    /** Full Jacobian addition (add-2007-bl), handling all edge cases. */
    JacobianPoint
    add(const JacobianPoint &o) const
    {
        if (is_identity()) return o;
        if (o.is_identity()) return *this;
        Field z1z1 = Z.square();
        Field z2z2 = o.Z.square();
        Field u1 = X * z2z2;
        Field u2 = o.X * z1z1;
        Field s1 = Y * o.Z * z2z2;
        Field s2 = o.Y * Z * z1z1;
        if (u1 == u2) {
            if (s1 == s2) return dbl();
            return identity();
        }
        Field h = u2 - u1;
        Field i = h.dbl().square();
        Field j = h * i;
        Field rr = (s2 - s1).dbl();
        Field v = u1 * i;
        JacobianPoint r;
        r.X = rr.square() - j - v.dbl();
        r.Y = rr * (v - r.X) - (s1 * j).dbl();
        r.Z = ((Z + o.Z).square() - z1z1 - z2z2) * h;
        return r;
    }

    /** Mixed addition with an affine operand (Z2 = 1), the PADD fast path
     * used by MSM bucket accumulation. */
    JacobianPoint
    add_mixed(const Affine &o) const
    {
        if (o.infinity) return *this;
        if (is_identity()) return from_affine(o);
        Field z1z1 = Z.square();
        Field u2 = o.x * z1z1;
        Field s2 = o.y * Z * z1z1;
        if (X == u2) {
            if (Y == s2) return dbl();
            return identity();
        }
        Field h = u2 - X;
        Field hh = h.square();
        Field i = hh.dbl().dbl();
        Field j = h * i;
        Field rr = (s2 - Y).dbl();
        Field v = X * i;
        JacobianPoint r;
        r.X = rr.square() - j - v.dbl();
        r.Y = rr * (v - r.X) - (Y * j).dbl();
        r.Z = (Z + h).square() - z1z1 - hh;
        return r;
    }

    JacobianPoint operator+(const JacobianPoint &o) const { return add(o); }
    JacobianPoint &
    operator+=(const JacobianPoint &o)
    {
        return *this = add(o);
    }

    /** Scalar multiplication by a canonical big integer (double-and-add). */
    template <size_t N>
    JacobianPoint
    mul(const ff::BigInt<N> &k) const
    {
        JacobianPoint r = identity();
        for (size_t i = k.num_bits(); i-- > 0;) {
            r = r.dbl();
            if (k.bit(i)) r = r.add(*this);
        }
        return r;
    }

    /** Scalar multiplication by a scalar-field element. */
    JacobianPoint mul(const ff::Fr &k) const { return mul(k.to_repr()); }

    /** Equality in the projective sense (cross-multiplied). */
    bool
    operator==(const JacobianPoint &o) const
    {
        if (is_identity() || o.is_identity()) {
            return is_identity() == o.is_identity();
        }
        Field z1z1 = Z.square();
        Field z2z2 = o.Z.square();
        return X * z2z2 == o.X * z1z1 &&
               Y * o.Z * z2z2 == o.Y * Z * z1z1;
    }
};

template <typename Params>
JacobianPoint<Params>
AffinePoint<Params>::to_jacobian() const
{
    return JacobianPoint<Params>::from_affine(*this);
}

/**
 * Batch-normalize a vector of Jacobian points to affine with a single
 * inversion (Montgomery's trick over the Z coordinates).
 */
template <typename Params>
std::vector<AffinePoint<Params>>
batch_to_affine(std::span<const JacobianPoint<Params>> pts)
{
    using Field = typename Params::Field;
    std::vector<Field> zs(pts.size());
    for (size_t i = 0; i < pts.size(); ++i) zs[i] = pts[i].Z;
    ff::batch_inverse(zs);
    std::vector<AffinePoint<Params>> out(pts.size());
    for (size_t i = 0; i < pts.size(); ++i) {
        if (pts[i].is_identity()) continue;
        Field zi2 = zs[i].square();
        out[i] = AffinePoint<Params>(pts[i].X * zi2,
                                     pts[i].Y * zi2 * zs[i]);
    }
    return out;
}

}  // namespace zkspeed::curve
