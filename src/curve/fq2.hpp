/**
 * @file
 * Quadratic extension Fq2 = Fq[u] / (u^2 + 1).
 *
 * Coordinate field of BLS12-381 G2 and the first floor of the Fq12 pairing
 * tower.
 */
#pragma once

#include <random>

#include "ff/fq.hpp"

namespace zkspeed::curve {

class Fq2
{
  public:
    using Base = ff::Fq;

    Base c0{};
    Base c1{};

    constexpr Fq2() = default;
    Fq2(const Base &a, const Base &b) : c0(a), c1(b) {}

    static Fq2 zero() { return Fq2(); }
    static Fq2 one() { return Fq2(Base::one(), Base::zero()); }
    static Fq2
    from_uint(uint64_t v)
    {
        return Fq2(Base::from_uint(v), Base::zero());
    }

    bool operator==(const Fq2 &o) const = default;
    bool is_zero() const { return c0.is_zero() && c1.is_zero(); }
    bool is_one() const { return c0.is_one() && c1.is_zero(); }

    Fq2 operator+(const Fq2 &o) const { return {c0 + o.c0, c1 + o.c1}; }
    Fq2 operator-(const Fq2 &o) const { return {c0 - o.c0, c1 - o.c1}; }
    Fq2 operator-() const { return {-c0, -c1}; }
    Fq2 dbl() const { return {c0.dbl(), c1.dbl()}; }

    /** Karatsuba multiplication: 3 base-field muls. */
    Fq2
    operator*(const Fq2 &o) const
    {
        Base aa = c0 * o.c0;
        Base bb = c1 * o.c1;
        Base cc = (c0 + c1) * (o.c0 + o.c1);
        return {aa - bb, cc - aa - bb};
    }

    Fq2 &operator+=(const Fq2 &o) { return *this = *this + o; }
    Fq2 &operator-=(const Fq2 &o) { return *this = *this - o; }
    Fq2 &operator*=(const Fq2 &o) { return *this = *this * o; }

    Fq2
    square() const
    {
        // (c0 + c1 u)^2 = (c0+c1)(c0-c1) + 2 c0 c1 u.
        Base a = c0 + c1;
        Base b = c0 - c1;
        Base c = c0 * c1;
        return {a * b, c.dbl()};
    }

    /** Multiply by a base-field scalar. */
    Fq2 scale(const Base &s) const { return {c0 * s, c1 * s}; }

    /** Conjugate: c0 - c1 u. */
    Fq2 conjugate() const { return {c0, -c1}; }

    /** Multiply by the non-residue (u + 1), used by the Fq6 tower. */
    Fq2
    mul_by_nonresidue() const
    {
        // (c0 + c1 u)(1 + u) = (c0 - c1) + (c0 + c1) u.
        return {c0 - c1, c0 + c1};
    }

    Fq2
    inverse() const
    {
        // 1 / (c0 + c1 u) = (c0 - c1 u) / (c0^2 + c1^2).
        Base norm = c0.square() + c1.square();
        Base ninv = norm.inverse();
        return {c0 * ninv, -(c1 * ninv)};
    }

    template <size_t N>
    Fq2
    pow(const ff::BigInt<N> &e) const
    {
        Fq2 r = one();
        for (size_t i = e.num_bits(); i-- > 0;) {
            r = r.square();
            if (e.bit(i)) r = r * *this;
        }
        return r;
    }

    /** Frobenius endomorphism x -> x^q (conjugation, since u^q = -u). */
    Fq2
    frobenius() const
    {
        return conjugate();
    }

    template <typename Rng>
    static Fq2
    random(Rng &rng)
    {
        return {Base::random(rng), Base::random(rng)};
    }
};

}  // namespace zkspeed::curve
