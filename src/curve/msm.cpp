#include "curve/msm.hpp"

#include <algorithm>

#include "ff/parallel.hpp"

namespace zkspeed::curve {

using ff::Fq;
using ff::Fr;

unsigned
pippenger_window_size(size_t n)
{
    unsigned bits = 0;
    while ((size_t(1) << (bits + 1)) <= n) ++bits;
    if (bits <= 5) return std::max(2u, bits);
    return std::min(16u, bits - 3);
}

namespace {

/** Window override clamp: w >= 64 shifts are UB and huge w allocates
 * 2^w buckets per worker, so every user-supplied value is forced into
 * the same [2, 16] range pippenger_window_size chooses from. */
unsigned
clamp_window(unsigned window, size_t n)
{
    if (window == 0) return pippenger_window_size(n);
    return std::clamp(window, kMinWindowBits, kMaxWindowBits);
}

/** Extract the w-bit digit starting at bit offset off (w <= 16, so the
 * mask shift is always defined; offsets past the top limb read as 0). */
inline uint64_t
digit_at(const Fr::Repr &r, unsigned off, unsigned w)
{
    unsigned limb = off / 64;
    if (limb >= Fr::kLimbs) return 0;
    unsigned shift = off % 64;
    uint64_t v = r.limbs[limb] >> shift;
    if (shift + w > 64 && limb + 1 < Fr::kLimbs) {
        v |= r.limbs[limb + 1] << (64 - shift);
    }
    return v & ((uint64_t(1) << w) - 1);
}

// ---------------------------------------------------------------------------
// Signed-digit Pippenger with affine batch-add bucket accumulation.
//
// Digits are recoded into [-(2^{w-1}-1), 2^{w-1}] with a carry chain, so a
// window needs 2^{w-1} buckets instead of 2^w - 1 (negative digits add the
// cheaply-negated point). Bucket contents are reduced in *affine*
// coordinates: pending additions accumulate into cache-resident batches
// sharing one inversion over their slope denominators (the paper's
// bucket-aggregation trick, software twin of bench_fig5 / bench_fig8),
// making an addition cost ~6 Fq muls instead of the ~11 of a Jacobian
// mixed add. Large MSMs are first halved in scalar width by the GLV
// endomorphism split below.
// See DESIGN.md section 12 for the soundness argument.
// ---------------------------------------------------------------------------

/** Number of signed w-bit windows covering a `bits`-bit scalar plus its
 * recoding carry. When bits % w != 0 the top window has r = bits % w
 * <= w-1 payload bits, so its digit (raw + carry <= 2^r) never exceeds
 * 2^{w-1} and absorbs the final carry for free; only when w divides
 * bits exactly is an extra carry-only window needed. */
inline unsigned
num_signed_windows(unsigned w, unsigned bits)
{
    unsigned nw = (bits + w - 1) / w;
    if (bits % w == 0) ++nw;
    return nw;
}

/** Cost-model window choice for the signed kernel: the bucket phase
 * costs ~6 Fq muls per nonzero digit and the chunked aggregation
 * ~12.5 per bucket, so minimize nw(w) * (6n + 12.5 * 2^{w-1}). The
 * reference kernel keeps its own pre-PR heuristic. */
unsigned
auto_signed_window(size_t n, unsigned bits)
{
    unsigned best_w = kMinWindowBits;
    double best_cost = 0;
    for (unsigned w = kMinWindowBits; w <= kMaxWindowBits; ++w) {
        double cost = double(num_signed_windows(w, bits)) *
                      (6.0 * double(n) + 12.5 * double(1u << (w - 1)));
        if (best_cost == 0 || cost < best_cost) {
            best_cost = cost;
            best_w = w;
        }
    }
    return best_w;
}

/** Signed-digit recoding of one scalar into a column-major digit matrix
 * (stride = point count, one column per scalar). */
inline void
decompose_signed(const Fr::Repr &r, unsigned w, unsigned nw, int32_t *col,
                 size_t stride)
{
    const int32_t full = int32_t(1) << w;
    const int32_t half = int32_t(1) << (w - 1);
    int32_t carry = 0;
    for (unsigned win = 0; win < nw; ++win) {
        int32_t d = int32_t(digit_at(r, win * w, w)) + carry;
        carry = 0;
        if (d > half) {
            d -= full;
            carry = 1;
        }
        col[size_t(win) * stride] = d;
    }
}

// ---------------------------------------------------------------------------
// GLV endomorphism decomposition.
//
// BLS12-381's G1 carries the cube-root endomorphism phi(x, y) = (beta x, y)
// with beta^3 = 1 in Fq, acting on the r-torsion as multiplication by a
// lambda with lambda^2 + lambda + 1 = r *exactly* (not just mod r, a BLS
// family identity: r = z^4 - z^2 + 1 and lambda = z^2 - 1). That exact
// identity makes the scalar split plain integer division — s = s1 +
// lambda*s2 with s1 = s mod lambda and s2 = s div lambda, both < 2^128 —
// so an n-point 255-bit MSM becomes a 2n-point 128-bit MSM: the bucket
// work is unchanged (2n points, half the windows) but the per-window
// aggregation, inversion and digit-recoding overheads all halve.
//
// Every constant is derived and validated at startup rather than
// transcribed: lambda is found as an order-3 element of Fr* and checked
// against r limb-for-limb, beta as an order-3 element of Fq* checked by
// comparing phi(G) with lambda*G on the actual generator. If any check
// fails, ok stays false and msm() keeps the direct 255-bit path.
// ---------------------------------------------------------------------------

struct GlvCtx {
    bool ok = false;
    uint64_t lam[2] = {0, 0};    ///< lambda; lambda^2 + lambda + 1 == r.
    uint64_t recip[2] = {0, 0};  ///< floor(2^255 / lambda).
    Fq beta;                     ///< phi(x, y) = (beta x, y).
};

using u128 = unsigned __int128;

/** 128 x 128 -> 256 bit product on raw limbs. */
inline void
mul_2x2(const uint64_t a[2], const uint64_t b[2], uint64_t out[4])
{
    u128 p00 = u128(a[0]) * b[0];
    u128 p01 = u128(a[0]) * b[1];
    u128 p10 = u128(a[1]) * b[0];
    u128 p11 = u128(a[1]) * b[1];
    out[0] = uint64_t(p00);
    u128 mid = (p00 >> 64) + uint64_t(p01) + uint64_t(p10);
    out[1] = uint64_t(mid);
    u128 hi = (mid >> 64) + (p01 >> 64) + (p10 >> 64) + uint64_t(p11);
    out[2] = uint64_t(hi);
    out[3] = uint64_t((hi >> 64) + (p11 >> 64));
}

/** (m - 1) / 3 when exact; returns false when 3 does not divide m - 1
 * (no order-3 element exists, so no GLV). m is odd (a field modulus). */
template <size_t N>
bool
sub1_div3(ff::BigInt<N> m, ff::BigInt<N> &out)
{
    m.limbs[0] -= 1;  // m odd => no borrow
    uint64_t rem = 0;
    for (size_t i = N; i-- > 0;) {
        u128 cur = (u128(rem) << 64) | m.limbs[i];
        out.limbs[i] = uint64_t(cur / 3);
        rem = uint64_t(cur % 3);
    }
    return rem == 0;
}

/** An element of multiplicative order 3, or zero() when none is found
 * from small bases (then GLV is disabled). */
template <typename F, size_t N>
F
order3_element(const ff::BigInt<N> &exp)
{
    for (uint64_t base : {2, 3, 5, 7, 11, 13}) {
        F t = F::from_uint(base).pow(exp);
        if (!(t == F::one())) return t;
    }
    return F::zero();
}

GlvCtx
build_glv()
{
    GlvCtx g;

    // lambda: an order-3 element of Fr* whose canonical lift satisfies
    // lambda^2 + lambda + 1 == r exactly. Order-3 elements come in
    // pairs {t, t^2} (the two primitive cube roots); only one lift is
    // < 2^128, and the exact-integer check rejects everything else.
    ff::BigInt<Fr::kLimbs> e3r;
    if (!sub1_div3(Fr::kModulus, e3r)) return g;
    Fr t = order3_element<Fr>(e3r);
    if (t == Fr::zero()) return g;
    Fr lam_fr = Fr::zero();
    for (Fr cand : {t, t * t}) {
        auto rep = cand.to_repr();
        if (rep.limbs[2] != 0 || rep.limbs[3] != 0) continue;
        uint64_t sq[4];
        mul_2x2(rep.limbs.data(), rep.limbs.data(), sq);
        // sq += lambda + 1, then compare with r.
        u128 c = u128(sq[0]) + rep.limbs[0] + 1;
        sq[0] = uint64_t(c);
        c = (c >> 64) + sq[1] + rep.limbs[1];
        sq[1] = uint64_t(c);
        c = (c >> 64) + sq[2];
        sq[2] = uint64_t(c);
        sq[3] += uint64_t(c >> 64);
        if (sq[0] == Fr::kModulus.limbs[0] &&
            sq[1] == Fr::kModulus.limbs[1] &&
            sq[2] == Fr::kModulus.limbs[2] &&
            sq[3] == Fr::kModulus.limbs[3]) {
            g.lam[0] = rep.limbs[0];
            g.lam[1] = rep.limbs[1];
            lam_fr = cand;
        }
    }
    if (lam_fr == Fr::zero()) return g;

    // recip = floor(2^255 / lambda) by binary long division; must fit
    // 128 bits (i.e. lambda > 2^127) for the split's error bound.
    {
        uint64_t q[3] = {0, 0, 0};
        uint64_t r0 = 0, r1 = 0, r2 = 0;  // remainder < lambda < 2^128
        for (int i = 255; i >= 0; --i) {
            r2 = (r2 << 1) | (r1 >> 63);
            r1 = (r1 << 1) | (r0 >> 63);
            r0 = r0 << 1;
            if (i == 255) r0 |= 1;  // dividend = 2^255
            bool ge = r2 != 0 || r1 > g.lam[1] ||
                      (r1 == g.lam[1] && r0 >= g.lam[0]);
            if (ge) {
                u128 d = u128(r0) - g.lam[0];
                r0 = uint64_t(d);
                d = u128(r1) - g.lam[1] - ((d >> 64) & 1);
                r1 = uint64_t(d);
                r2 -= uint64_t((d >> 64) & 1);
                q[i / 64] |= uint64_t(1) << (i % 64);
            }
        }
        if (q[2] != 0) return g;
        g.recip[0] = q[0];
        g.recip[1] = q[1];
    }

    // beta: the primitive cube root in Fq for which phi(G) == lambda*G
    // on the actual subgroup generator (the other root corresponds to
    // lambda^2). G1 is cyclic of prime order, so checking the generator
    // proves phi acts as lambda on every subgroup point.
    ff::BigInt<Fq::kLimbs> e3q;
    if (!sub1_div3(Fq::kModulus, e3q)) return g;
    Fq u = order3_element<Fq>(e3q);
    if (u == Fq::zero()) return g;
    const G1Affine gen = G1Params::generator();
    const G1 lam_g = G1::from_affine(gen).mul(lam_fr);
    for (Fq cand : {u, u * u}) {
        if (G1::from_affine(G1Affine(cand * gen.x, gen.y)) == lam_g) {
            g.beta = cand;
            g.ok = true;
            break;
        }
    }
    return g;
}

const GlvCtx &
glv_ctx()
{
    static const GlvCtx g = build_glv();
    return g;
}

/** Split s (canonical, < r) as s = s1 + lambda * s2 — exact integer
 * identity, so correctness needs nothing mod r. Quotient estimate via
 * the precomputed reciprocal: q^ = floor(s * recip / 2^255) undershoots
 * floor(s / lambda) by at most 2 and is corrected by subtraction. */
inline void
glv_split(const Fr::Repr &s, const GlvCtx &g, uint64_t s1[2],
          uint64_t s2[2])
{
    using u128 = unsigned __int128;
    uint64_t p[6] = {0, 0, 0, 0, 0, 0};
    for (int i = 0; i < 4; ++i) {
        u128 carry = 0;
        for (int j = 0; j < 2; ++j) {
            u128 cur = u128(s.limbs[i]) * g.recip[j] + p[i + j] + carry;
            p[i + j] = uint64_t(cur);
            carry = cur >> 64;
        }
        for (int k = i + 2; carry != 0 && k < 6; ++k) {
            u128 cur = u128(p[k]) + carry;
            p[k] = uint64_t(cur);
            carry = cur >> 64;
        }
    }
    uint64_t q0 = (p[3] >> 63) | (p[4] << 1);
    uint64_t q1 = (p[4] >> 63) | (p[5] << 1);

    // rem = s - q^ * lambda, corrected until rem < lambda (<= 2 steps).
    uint64_t ql[4];
    const uint64_t qhat[2] = {q0, q1};
    mul_2x2(qhat, g.lam, ql);
    uint64_t r4[4];
    u128 borrow = 0;
    for (int i = 0; i < 4; ++i) {
        u128 d = u128(s.limbs[i]) - ql[i] - uint64_t(borrow);
        r4[i] = uint64_t(d);
        borrow = (d >> 64) & 1;
    }
    while (r4[2] != 0 || r4[3] != 0 || r4[1] > g.lam[1] ||
           (r4[1] == g.lam[1] && r4[0] >= g.lam[0])) {
        u128 d = u128(r4[0]) - g.lam[0];
        r4[0] = uint64_t(d);
        d = u128(r4[1]) - g.lam[1] - ((d >> 64) & 1);
        r4[1] = uint64_t(d);
        d = u128(r4[2]) - ((d >> 64) & 1);
        r4[2] = uint64_t(d);
        r4[3] -= uint64_t((d >> 64) & 1);
        if (++q0 == 0) ++q1;
    }
    s1[0] = r4[0];
    s1[1] = r4[1];
    s2[0] = q0;
    s2[1] = q1;
}

/** Affine point in a bucket-reduction buffer (never the identity; empty
 * buckets and cancelled pairs are simply not stored). */
struct AffineSlot {
    Fq x, y;
};

/** One scheduled affine addition P1 + P2 (or doubling), waiting on the
 * batched inversion of its slope denominator. sum_x pre-stores x1 + x2
 * so completion is exactly lambda, lambda^2 and the y3 product. `out`
 * is the pair's bucket during bucket accumulation (the result feeds
 * back into that waiting slot) and the chain slot during aggregation. */
struct Pending {
    Fq x1, y1, sum_x, num;
    uint32_t out = 0;
};

/** Per-worker scratch, reused across windows so buffers are only ever
 * grown. Pending batches are double-buffered: completing batch `cur`
 * feeds results back into the waiting slots, which may schedule new
 * pairs into batch `cur ^ 1`. */
struct WindowScratch {
    std::vector<Fq> denoms[2];
    std::vector<Fq> prefix;
    std::vector<Pending> pend[2];
    std::vector<AffineSlot> bucket_val;
    std::vector<uint8_t> bucket_set;
    std::vector<AffineSlot> chain;
    std::vector<uint8_t> chain_set;
};

/**
 * Reduce one window's signed digits to a window sum.
 *
 * Entries stream through in point order against an L2-resident
 * per-bucket waiting slot: the first occupant of a bucket waits, the
 * next one pairs with it (vacating the slot), and pairs accumulate into
 * a pending batch that shares ONE inversion over its slope
 * denominators. Batches are completed every kFlush pairs — small enough
 * that the batch buffers stay cache-resident — and each completed pair
 * feeds straight back into its bucket's waiting slot, where it either
 * waits or pairs again (into the *other* pending batch). No sorting, no
 * index-gathers, no result streams: pending work strictly shrinks per
 * feedback generation and whatever rests in the slots at the end IS the
 * bucket table. Equal-x pairs never reach the inversion: P + (-P)
 * cancels (the pair just disappears) and P + P is scheduled as a
 * doubling with denominator 2y != 0 (y = 0 would be a 2-torsion point,
 * and E(Fq) has odd order), so no zero denominator can poison the
 * batch.
 */
G1
accumulate_window(std::span<const G1Affine> points, const int32_t *col,
                  unsigned half, WindowScratch &ws)
{
    const size_t n = points.size();

    if (ws.bucket_val.size() < size_t(half) + 1) {
        ws.bucket_val.resize(size_t(half) + 1);
    }
    ws.bucket_set.assign(size_t(half) + 1, 0);
    constexpr size_t kFlush = 4096;
    int cur = 0;
    for (int s = 0; s < 2; ++s) {
        ws.pend[s].clear();
        ws.denoms[s].clear();
    }

    // Classify one pair: emit a Pending op into the current batch, or
    // nothing when the pair cancels (P + (-P), or doubling a y = 0
    // point).
    auto schedule_pair = [&](const AffineSlot &p, const AffineSlot &q,
                             uint32_t out) -> bool {
        if (p.x == q.x) {
            if (p.y == q.y) {
                if (p.y.is_zero()) return false;  // 2P = identity
                Fq x_sq = p.x.square();
                ws.denoms[cur].push_back(p.y.dbl());
                ws.pend[cur].push_back(
                    {p.x, p.y, p.x.dbl(), x_sq.dbl() + x_sq, out});
                return true;
            }
            return false;  // P + (-P) = identity
        }
        ws.denoms[cur].push_back(q.x - p.x);
        ws.pend[cur].push_back({p.x, p.y, p.x + q.x, q.y - p.y, out});
        return true;
    };

    // Montgomery's trick over one batch: invert every denominator in
    // place behind a single field inversion. The backward peel is kept
    // as its own tight loop so callers' completion loops are free of
    // serial dependencies (their per-pair muls pipeline). Every
    // denominator is nonzero by construction (see schedule_pair), so no
    // zero-skip is needed.
    auto invert_batch = [&](std::vector<Fq> &dens) {
        const size_t m = dens.size();
        if (ws.prefix.size() < m) ws.prefix.resize(m);
        Fq acc = dens[0];
        ws.prefix[0] = acc;
        for (size_t j = 1; j < m; ++j) {
            acc = acc * dens[j];
            ws.prefix[j] = acc;
        }
        Fq inv = acc.inverse();
        for (size_t j = m; j-- > 1;) {
            Fq x_inv = inv * ws.prefix[j - 1];
            inv = inv * dens[j];
            dens[j] = x_inv;
        }
        dens[0] = inv;
    };

    // One streamed entry: pair with the bucket's waiting occupant, or
    // become the waiting occupant (a scheduled pair vacates the slot).
    auto feed = [&](uint32_t b, const AffineSlot &p) {
        if (!ws.bucket_set[b]) {
            ws.bucket_val[b] = p;
            ws.bucket_set[b] = 1;
            return;
        }
        ws.bucket_set[b] = 0;
        schedule_pair(ws.bucket_val[b], p, b);
    };

    // Complete the current batch: one shared inversion, then per pair
    // lambda = num / den, x3 = lambda^2 - (x1 + x2),
    // y3 = lambda (x1 - x3) - y1, feeding the result straight back into
    // its bucket's waiting slot. Feedback pairs land in the swapped-in
    // batch, which cannot overflow mid-completion (at most m/2 of
    // them).
    auto flush = [&]() {
        auto &pend = ws.pend[cur];
        auto &dens = ws.denoms[cur];
        const size_t m = pend.size();
        if (m == 0) return;
        cur ^= 1;
        invert_batch(dens);
        for (size_t j = 0; j < m; ++j) {
            const Pending &p = pend[j];
            Fq lambda = p.num * dens[j];
            Fq x3 = lambda.square() - p.sum_x;
            feed(p.out, {x3, lambda * (p.x1 - x3) - p.y1});
        }
        pend.clear();
        dens.clear();
    };

    // Stream the input points in order (signed digits pick the
    // cheaply-negated point), completing a batch whenever it fills,
    // then drain the feedback; whatever then rests in the waiting slots
    // IS the final bucket table.
    for (size_t i = 0; i < n; ++i) {
        int32_t d = col[i];
        if (d == 0) continue;
        AffineSlot p{points[i].x,
                     d < 0 ? -points[i].y : points[i].y};
        feed(uint32_t(d < 0 ? -d : d), p);
        if (ws.pend[cur].size() >= kFlush) flush();
    }
    while (!ws.pend[cur].empty()) flush();

    // Aggregation: sum_b b * bucket_b over 2^{w-1} buckets (half the
    // unsigned count). Small windows use the classic Jacobian running
    // sum; large windows keep the chains affine too.
    constexpr uint32_t kAggChunk = 16;
    if (half < 16 * kAggChunk) {
        uint32_t top = half;
        while (top > 0 && !ws.bucket_set[top]) --top;
        G1 acc = G1::identity();
        G1 window_sum = G1::identity();
        for (uint32_t b = top; b >= 1; --b) {
            if (ws.bucket_set[b]) {
                acc = acc.add_mixed(
                    G1Affine(ws.bucket_val[b].x, ws.bucket_val[b].y));
            }
            window_sum += acc;
        }
        return window_sum;
    }

    // Chunked batch-affine running sums. Split the buckets into C
    // chunks of L: with bucket b = c*L + (j+1),
    //   sum_b b * B_b = L * sum_c c*S_c + sum_c T_c,
    // where S_c is chunk c's sum and T_c its local triangle
    // sum_j (j+1)*B_{c,j}. Every chunk's (acc, T) chains advance in
    // lockstep (for j = L-1..0: acc += B_j; T += acc), which gives
    // 2C independent affine additions per step to batch behind one
    // inversion — the dependent "T += acc" of step j fuses with the
    // independent "acc += B_{j-1}" of the next step.
    const uint32_t C = half / kAggChunk;
    ws.chain.resize(size_t(2) * C);  // [0,C) = acc_c, [C,2C) = T_c
    ws.chain_set.assign(size_t(2) * C, 0);

    // Complete the current batch into chain slots (aggregation results
    // are consumed by the combine below, not fed back into buckets).
    auto complete_chain = [&]() {
        auto &pend = ws.pend[cur];
        auto &dens = ws.denoms[cur];
        const size_t m = pend.size();
        if (m == 0) return;
        invert_batch(dens);
        for (size_t j = 0; j < m; ++j) {
            const Pending &p = pend[j];
            Fq lambda = p.num * dens[j];
            Fq x3 = lambda.square() - p.sum_x;
            ws.chain[p.out] = {x3, lambda * (p.x1 - x3) - p.y1};
        }
        pend.clear();
        dens.clear();
    };

    auto chain_add = [&](uint32_t dst, const AffineSlot &src) {
        if (!ws.chain_set[dst]) {
            ws.chain[dst] = src;
            ws.chain_set[dst] = 1;
            return;
        }
        if (!schedule_pair(ws.chain[dst], src, dst)) ws.chain_set[dst] = 0;
    };
    auto acc_step = [&](uint32_t j) {  // acc_c += B_{c*L + j + 1}
        for (uint32_t c = 0; c < C; ++c) {
            uint32_t b = c * kAggChunk + j + 1;
            if (ws.bucket_set[b]) chain_add(c, ws.bucket_val[b]);
        }
    };
    auto tri_step = [&]() {  // T_c += acc_c (pre-batch value)
        for (uint32_t c = 0; c < C; ++c) {
            if (ws.chain_set[c]) chain_add(C + c, ws.chain[c]);
        }
    };

    acc_step(kAggChunk - 1);
    complete_chain();
    for (uint32_t j = kAggChunk - 1; j-- > 0;) {
        tri_step();      // reads acc after step j+1
        acc_step(j);     // writes acc for step j
        complete_chain();
    }
    tri_step();
    complete_chain();

    // Combine: hi = sum_c c*S_c via a short Jacobian running sum over
    // the C chunk sums, then window_sum = L*hi + sum_c T_c.
    G1 racc = G1::identity();
    G1 hi = G1::identity();
    for (uint32_t c = C; c-- > 1;) {
        if (ws.chain_set[c]) {
            racc = racc.add_mixed(G1Affine(ws.chain[c].x, ws.chain[c].y));
        }
        hi += racc;
    }
    static_assert((kAggChunk & (kAggChunk - 1)) == 0);
    for (uint32_t l = kAggChunk; l > 1; l >>= 1) hi = hi.dbl();
    for (uint32_t c = 0; c < C; ++c) {
        if (ws.chain_set[C + c]) {
            hi = hi.add_mixed(
                G1Affine(ws.chain[C + c].x, ws.chain[C + c].y));
        }
    }
    return hi;
}

G1
pippenger_signed(std::span<const G1Affine> points,
                 std::span<const Fr::Repr> reprs, unsigned w,
                 unsigned bits)
{
    const size_t n = points.size();
    const unsigned nw = num_signed_windows(w, bits);
    const unsigned half = 1u << (w - 1);

    // Signed-digit recoding, column-major so each window walks a
    // contiguous digit column. Identity points decompose to all-zero
    // columns (they contribute nothing and the affine kernel assumes
    // finite points).
    std::vector<int32_t> digits(size_t(nw) * n);
    ff::parallel_for(
        n,
        [&](size_t begin, size_t end) {
            for (size_t i = begin; i < end; ++i) {
                if (points[i].is_identity()) {
                    for (unsigned win = 0; win < nw; ++win) {
                        digits[size_t(win) * n + i] = 0;
                    }
                    continue;
                }
                decompose_signed(reprs[i], w, nw, digits.data() + i, n);
            }
        },
        1024);

    // Windows are independent: reduce them in parallel (per-worker
    // scratch), then combine serially MSB-first.
    std::vector<G1> window_sums(nw, G1::identity());
    ff::parallel_for(
        nw,
        [&](size_t win_begin, size_t win_end) {
            WindowScratch ws;
            for (size_t win = win_begin; win < win_end; ++win) {
                window_sums[win] = accumulate_window(
                    points, digits.data() + win * n, half, ws);
            }
        },
        // Threading only pays off for MSMs with real work per window.
        n >= 4096 ? 1 : nw);

    G1 result = G1::identity();
    for (unsigned win = nw; win-- > 0;) {
        for (unsigned b = 0; b < w; ++b) result = result.dbl();
        result += window_sums[win];
    }
    return result;
}

/** GLV threshold: below this the split's phi-points and divisions cost
 * more than the halved aggregation saves (and keeping small MSMs on the
 * direct path keeps both code paths unit-test-covered). */
constexpr size_t kGlvMinPoints = 32;
constexpr unsigned kGlvBits = 128;

G1
pippenger_glv(std::span<const G1Affine> points,
              std::span<const Fr::Repr> reprs, unsigned window,
              const GlvCtx &g)
{
    const size_t n = points.size();
    // Interleave (P_i, phi(P_i)) so the bucket phase's point stream
    // stays a single sequential read; the matching scalar halves sit at
    // the same indices. phi of the identity is the identity (the digit
    // pass zeroes its columns either way).
    std::vector<G1Affine> pts2(2 * n);
    std::vector<Fr::Repr> reprs2(2 * n);
    ff::parallel_for(
        n,
        [&](size_t begin, size_t end) {
            for (size_t i = begin; i < end; ++i) {
                pts2[2 * i] = points[i];
                pts2[2 * i + 1] =
                    points[i].is_identity()
                        ? points[i]
                        : G1Affine(g.beta * points[i].x, points[i].y);
                uint64_t s1[2], s2[2];
                glv_split(reprs[i], g, s1, s2);
                Fr::Repr r1(0), r2(0);
                r1.limbs[0] = s1[0];
                r1.limbs[1] = s1[1];
                r2.limbs[0] = s2[0];
                r2.limbs[1] = s2[1];
                reprs2[2 * i] = r1;
                reprs2[2 * i + 1] = r2;
            }
        },
        1024);
    unsigned w = window == 0
                     ? auto_signed_window(2 * n, kGlvBits)
                     : std::clamp(window, kMinWindowBits, kMaxWindowBits);
    return pippenger_signed(pts2, reprs2, w, kGlvBits);
}

// ---------------------------------------------------------------------------
// Pre-PR 8 kernel: unsigned digits, Jacobian bucket accumulation. Kept
// verbatim as the bench_msm baseline and an independent cross-check.
// ---------------------------------------------------------------------------

G1
pippenger_reference_impl(std::span<const G1Affine> points,
                         std::span<const Fr::Repr> reprs, unsigned w)
{
    const unsigned kScalarBits = Fr::kBits;
    const unsigned num_windows = (kScalarBits + w - 1) / w;
    const size_t num_buckets = (size_t(1) << w) - 1;

    std::vector<G1> window_sums(num_windows, G1::identity());
    ff::parallel_for(
        num_windows,
        [&](size_t win_begin, size_t win_end) {
            std::vector<G1> buckets(num_buckets);
            for (size_t win = win_begin; win < win_end; ++win) {
                std::fill(buckets.begin(), buckets.end(), G1::identity());
                unsigned off = unsigned(win) * w;
                unsigned width = std::min(w, kScalarBits - off);
                for (size_t i = 0; i < points.size(); ++i) {
                    uint64_t d = digit_at(reprs[i], off, width);
                    if (d != 0) {
                        buckets[d - 1] = buckets[d - 1].add_mixed(points[i]);
                    }
                }
                // Running-sum aggregation: 2*(2^w - 1) adds per window.
                G1 acc = G1::identity();
                G1 window_sum = G1::identity();
                for (size_t b = num_buckets; b-- > 0;) {
                    acc += buckets[b];
                    window_sum += acc;
                }
                window_sums[win] = window_sum;
            }
        },
        points.size() >= 4096 ? 1 : num_windows);
    G1 result = G1::identity();
    for (unsigned win = num_windows; win-- > 0;) {
        for (unsigned b = 0; b < w; ++b) result = result.dbl();
        result += window_sums[win];
    }
    return result;
}

std::vector<Fr::Repr>
to_reprs(std::span<const Fr> scalars)
{
    std::vector<Fr::Repr> reprs(scalars.size());
    for (size_t i = 0; i < scalars.size(); ++i) {
        reprs[i] = scalars[i].to_repr();
    }
    return reprs;
}

}  // namespace

G1
msm(std::span<const G1Affine> points, std::span<const Fr> scalars,
    unsigned window)
{
    if (points.size() != scalars.size()) {
        throw MsmSizeError("curve::msm", points.size(), scalars.size());
    }
    if (points.empty()) return G1::identity();
    const GlvCtx &g = glv_ctx();
    if (g.ok && points.size() >= kGlvMinPoints) {
        return pippenger_glv(points, to_reprs(scalars), window, g);
    }
    unsigned w = window == 0
                     ? auto_signed_window(points.size(), Fr::kBits)
                     : std::clamp(window, kMinWindowBits, kMaxWindowBits);
    return pippenger_signed(points, to_reprs(scalars), w, Fr::kBits);
}

G1
msm_reference(std::span<const G1Affine> points, std::span<const Fr> scalars,
              unsigned window)
{
    if (points.size() != scalars.size()) {
        throw MsmSizeError("curve::msm_reference", points.size(),
                           scalars.size());
    }
    if (points.empty()) return G1::identity();
    unsigned w = clamp_window(window, points.size());
    return pippenger_reference_impl(points, to_reprs(scalars), w);
}

G1
tree_sum(std::span<const G1Affine> points)
{
    if (points.empty()) return G1::identity();
    // First level: pairwise mixed adds from affine inputs.
    std::vector<G1> level;
    level.reserve((points.size() + 1) / 2);
    for (size_t i = 0; i + 1 < points.size(); i += 2) {
        level.push_back(G1::from_affine(points[i]).add_mixed(points[i + 1]));
    }
    if (points.size() % 2) {
        level.push_back(G1::from_affine(points.back()));
    }
    // Remaining levels: pairwise Jacobian adds.
    while (level.size() > 1) {
        size_t half = (level.size() + 1) / 2;
        for (size_t i = 0; i < level.size() / 2; ++i) {
            level[i] = level[2 * i].add(level[2 * i + 1]);
        }
        if (level.size() % 2) level[half - 1] = level.back();
        level.resize(half);
    }
    return level[0];
}

G1
msm_sparse(std::span<const G1Affine> points, std::span<const Fr> scalars,
           MsmStats *stats, unsigned window)
{
    if (points.size() != scalars.size()) {
        throw MsmSizeError("curve::msm_sparse", points.size(),
                           scalars.size());
    }
    MsmStats st;
    std::vector<G1Affine> one_points;
    std::vector<G1Affine> dense_points;
    std::vector<Fr> dense_scalars;
    const Fr one = Fr::one();
    for (size_t i = 0; i < points.size(); ++i) {
        if (scalars[i].is_zero()) {
            ++st.zeros;
        } else if (scalars[i] == one) {
            ++st.ones;
            one_points.push_back(points[i]);
        } else {
            ++st.dense;
            dense_points.push_back(points[i]);
            dense_scalars.push_back(scalars[i]);
        }
    }
    if (stats != nullptr) *stats = st;
    G1 result = tree_sum(one_points);
    if (!dense_points.empty()) {
        result += msm(dense_points, dense_scalars, window);
    }
    return result;
}

G1
msm_naive(std::span<const G1Affine> points, std::span<const Fr> scalars)
{
    if (points.size() != scalars.size()) {
        throw MsmSizeError("curve::msm_naive", points.size(),
                           scalars.size());
    }
    G1 acc = G1::identity();
    for (size_t i = 0; i < points.size(); ++i) {
        acc += G1::from_affine(points[i]).mul(scalars[i]);
    }
    return acc;
}

}  // namespace zkspeed::curve
