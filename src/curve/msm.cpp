#include "curve/msm.hpp"

#include <algorithm>

#include "ff/parallel.hpp"

namespace zkspeed::curve {

using ff::Fr;

unsigned
pippenger_window_size(size_t n)
{
    unsigned bits = 0;
    while ((size_t(1) << (bits + 1)) <= n) ++bits;
    if (bits <= 5) return std::max(2u, bits);
    return std::min(16u, bits - 3);
}

namespace {

/** Extract the w-bit digit starting at bit offset off. */
inline uint64_t
digit_at(const Fr::Repr &r, unsigned off, unsigned w)
{
    unsigned limb = off / 64;
    unsigned shift = off % 64;
    uint64_t v = r.limbs[limb] >> shift;
    if (shift + w > 64 && limb + 1 < Fr::kLimbs) {
        v |= r.limbs[limb + 1] << (64 - shift);
    }
    return v & ((uint64_t(1) << w) - 1);
}

G1
pippenger_impl(std::span<const G1Affine> points,
               std::span<const Fr::Repr> reprs, unsigned w)
{
    const unsigned kScalarBits = Fr::kBits;
    const unsigned num_windows = (kScalarBits + w - 1) / w;
    const size_t num_buckets = (size_t(1) << w) - 1;

    // Windows are independent: bucket and aggregate them in parallel
    // (one bucket array per worker), then combine serially MSB-first.
    std::vector<G1> window_sums(num_windows, G1::identity());
    ff::parallel_for(
        num_windows,
        [&](size_t win_begin, size_t win_end) {
            std::vector<G1> buckets(num_buckets);
            for (size_t win = win_begin; win < win_end; ++win) {
                std::fill(buckets.begin(), buckets.end(), G1::identity());
                unsigned off = unsigned(win) * w;
                unsigned width = std::min(w, kScalarBits - off);
                for (size_t i = 0; i < points.size(); ++i) {
                    uint64_t d = digit_at(reprs[i], off, width);
                    if (d != 0) {
                        buckets[d - 1] = buckets[d - 1].add_mixed(points[i]);
                    }
                }
                // Running-sum aggregation: 2*(2^w - 1) adds per window.
                G1 acc = G1::identity();
                G1 window_sum = G1::identity();
                for (size_t b = num_buckets; b-- > 0;) {
                    acc += buckets[b];
                    window_sum += acc;
                }
                window_sums[win] = window_sum;
            }
        },
        // Threading only pays off for MSMs with real work per window.
        points.size() >= 4096 ? 1 : num_windows);
    G1 result = G1::identity();
    for (unsigned win = num_windows; win-- > 0;) {
        for (unsigned b = 0; b < w; ++b) result = result.dbl();
        result += window_sums[win];
    }
    return result;
}

}  // namespace

G1
msm(std::span<const G1Affine> points, std::span<const Fr> scalars,
    unsigned window)
{
    if (points.size() != scalars.size() || points.empty()) {
        return G1::identity();
    }
    if (window == 0) window = pippenger_window_size(points.size());
    std::vector<Fr::Repr> reprs(scalars.size());
    for (size_t i = 0; i < scalars.size(); ++i) {
        reprs[i] = scalars[i].to_repr();
    }
    return pippenger_impl(points, reprs, window);
}

G1
tree_sum(std::span<const G1Affine> points)
{
    if (points.empty()) return G1::identity();
    // First level: pairwise mixed adds from affine inputs.
    std::vector<G1> level;
    level.reserve((points.size() + 1) / 2);
    for (size_t i = 0; i + 1 < points.size(); i += 2) {
        level.push_back(G1::from_affine(points[i]).add_mixed(points[i + 1]));
    }
    if (points.size() % 2) {
        level.push_back(G1::from_affine(points.back()));
    }
    // Remaining levels: pairwise Jacobian adds.
    while (level.size() > 1) {
        size_t half = (level.size() + 1) / 2;
        for (size_t i = 0; i < level.size() / 2; ++i) {
            level[i] = level[2 * i].add(level[2 * i + 1]);
        }
        if (level.size() % 2) level[half - 1] = level.back();
        level.resize(half);
    }
    return level[0];
}

G1
msm_sparse(std::span<const G1Affine> points, std::span<const Fr> scalars,
           MsmStats *stats, unsigned window)
{
    MsmStats st;
    std::vector<G1Affine> one_points;
    std::vector<G1Affine> dense_points;
    std::vector<Fr> dense_scalars;
    const Fr one = Fr::one();
    for (size_t i = 0; i < points.size(); ++i) {
        if (scalars[i].is_zero()) {
            ++st.zeros;
        } else if (scalars[i] == one) {
            ++st.ones;
            one_points.push_back(points[i]);
        } else {
            ++st.dense;
            dense_points.push_back(points[i]);
            dense_scalars.push_back(scalars[i]);
        }
    }
    if (stats != nullptr) *stats = st;
    G1 result = tree_sum(one_points);
    if (!dense_points.empty()) {
        result += msm(dense_points, dense_scalars, window);
    }
    return result;
}

G1
msm_naive(std::span<const G1Affine> points, std::span<const Fr> scalars)
{
    G1 acc = G1::identity();
    for (size_t i = 0; i < points.size(); ++i) {
        acc += G1::from_affine(points[i]).mul(scalars[i]);
    }
    return acc;
}

}  // namespace zkspeed::curve
