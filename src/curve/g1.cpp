#include "curve/g1.hpp"

namespace zkspeed::curve {

AffinePoint<G1Params>
G1Params::generator()
{
    static const AffinePoint<G1Params> kGen(
        ff::Fq::from_hex(
            "17f1d3a73197d7942695638c4fa9ac0fc3688c4f9774b905"
            "a14e3a3f171bac586c55e83ff97a1aeffb3af00adb22c6bb"),
        ff::Fq::from_hex(
            "08b3f481e3aaa0f1a09e30ed741d8ae4fcf5e095d5d00af6"
            "00db18cb2c04b3edd03cc744a2888ae40caa232946c5e7e1"));
    return kGen;
}

}  // namespace zkspeed::curve
