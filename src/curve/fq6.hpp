/**
 * @file
 * Cubic extension Fq6 = Fq2[v] / (v^3 - xi), xi = u + 1.
 *
 * Middle floor of the BLS12-381 pairing tower.
 */
#pragma once

#include "curve/fq2.hpp"

namespace zkspeed::curve {

class Fq6
{
  public:
    Fq2 c0{};
    Fq2 c1{};
    Fq2 c2{};

    constexpr Fq6() = default;
    Fq6(const Fq2 &a, const Fq2 &b, const Fq2 &c) : c0(a), c1(b), c2(c) {}

    static Fq6 zero() { return Fq6(); }
    static Fq6 one() { return Fq6(Fq2::one(), Fq2::zero(), Fq2::zero()); }

    bool operator==(const Fq6 &o) const = default;
    bool is_zero() const { return c0.is_zero() && c1.is_zero() && c2.is_zero(); }
    bool is_one() const { return c0.is_one() && c1.is_zero() && c2.is_zero(); }

    Fq6
    operator+(const Fq6 &o) const
    {
        return {c0 + o.c0, c1 + o.c1, c2 + o.c2};
    }

    Fq6
    operator-(const Fq6 &o) const
    {
        return {c0 - o.c0, c1 - o.c1, c2 - o.c2};
    }

    Fq6 operator-() const { return {-c0, -c1, -c2}; }

    /** Full multiplication (Karatsuba-style, 6 Fq2 muls). */
    Fq6
    operator*(const Fq6 &o) const
    {
        Fq2 aa = c0 * o.c0;
        Fq2 bb = c1 * o.c1;
        Fq2 cc = c2 * o.c2;
        Fq2 t0 = aa + ((c1 + c2) * (o.c1 + o.c2) - bb - cc)
                          .mul_by_nonresidue();
        Fq2 t1 = (c0 + c1) * (o.c0 + o.c1) - aa - bb + cc.mul_by_nonresidue();
        Fq2 t2 = (c0 + c2) * (o.c0 + o.c2) - aa - cc + bb;
        return {t0, t1, t2};
    }

    Fq6 &operator+=(const Fq6 &o) { return *this = *this + o; }
    Fq6 &operator-=(const Fq6 &o) { return *this = *this - o; }
    Fq6 &operator*=(const Fq6 &o) { return *this = *this * o; }

    Fq6 square() const { return *this * *this; }

    /** Sparse multiplication by (b0 + b1 v). */
    Fq6
    mul_by_01(const Fq2 &b0, const Fq2 &b1) const
    {
        Fq2 aa = c0 * b0;
        Fq2 bb = c1 * b1;
        Fq2 t0 = aa + ((c1 + c2) * b1 - bb).mul_by_nonresidue();
        Fq2 t1 = (c0 + c1) * (b0 + b1) - aa - bb;
        Fq2 t2 = (c0 + c2) * b0 - aa + bb;
        return {t0, t1, t2};
    }

    /** Sparse multiplication by (b1 v). */
    Fq6
    mul_by_1(const Fq2 &b1) const
    {
        return {(c2 * b1).mul_by_nonresidue(), c0 * b1, c1 * b1};
    }

    /** Multiply by v (the Fq12 non-residue): (c0,c1,c2) -> (xi c2, c0, c1). */
    Fq6
    mul_by_nonresidue() const
    {
        return {c2.mul_by_nonresidue(), c0, c1};
    }

    Fq6
    inverse() const
    {
        Fq2 a = c0.square() - (c1 * c2).mul_by_nonresidue();
        Fq2 b = c2.square().mul_by_nonresidue() - c0 * c1;
        Fq2 c = c1.square() - c0 * c2;
        Fq2 f = (c0 * a + ((c2 * b + c1 * c).mul_by_nonresidue())).inverse();
        return {a * f, b * f, c * f};
    }
};

}  // namespace zkspeed::curve
