/**
 * @file
 * Optimal-ate pairing on BLS12-381.
 *
 * e: G1 x G2 -> GT (the r-th roots of unity in Fq12). Used by the
 * multilinear-KZG verifier to check polynomial-opening proofs:
 *   e(C - v g, h) == prod_i e(pi_i, h^{tau_i} - z_i h).
 *
 * Implementation notes: Miller loop over |x| = 0xd201000000010000 with
 * homogeneous-projective line evaluation (M-twist, mul_by_014 sparse
 * multiplication), conjugation at the end because the BLS parameter is
 * negative. The final exponentiation uses the cheap "easy part"
 * ((q^6-1)(q^2+1) via conjugate/inverse and one pow) and performs the hard
 * part as a plain exponentiation by (q^4 - q^2 + 1)/r, derived at runtime
 * by big-integer division so no hand-copied chain constants are required.
 * This trades speed for transparency; pairings are only on the verifier
 * path, which the paper leaves on the CPU.
 */
#pragma once

#include <span>
#include <vector>

#include "curve/fq12.hpp"
#include "curve/g1.hpp"
#include "curve/g2.hpp"

namespace zkspeed::curve {

/** Miller loop without final exponentiation. */
Fq12 miller_loop(const G1Affine &p, const G2Affine &q);

/** Product of Miller loops (shares one final exponentiation). */
Fq12 multi_miller_loop(std::span<const G1Affine> ps,
                       std::span<const G2Affine> qs);

/**
 * Precomputed Miller-loop line coefficients for a fixed G2 point.
 *
 * The doubling/addition steps of the loop depend only on the G2 input;
 * the G1 point enters through the (cheap) line evaluation. Preparing a
 * G2 point once therefore removes all G2 arithmetic from subsequent
 * pairings against it — the fast path for verifiers whose G2 side is a
 * fixed SRS basis, and for the batch verifier's bisection, which
 * re-pairs the same G2 points on every probe.
 */
struct G2Prepared {
    /** (c0, c1, c4) triples feeding Fq12::mul_by_014, in loop order. */
    struct Coeffs {
        Fq2 c0, c1, c4;
    };
    std::vector<Coeffs> coeffs;
    bool infinity = true;
};

/** Run the G2-only half of the Miller loop once. */
G2Prepared prepare_g2(const G2Affine &q);

/** Multi-Miller loop consuming precomputed G2 line coefficients. */
Fq12 multi_miller_loop_prepared(std::span<const G1Affine> ps,
                                std::span<const G2Prepared> qs);

/** Product pairing check against prepared G2 points. */
bool pairing_product_is_one_prepared(std::span<const G1Affine> ps,
                                     std::span<const G2Prepared> qs);

/** Final exponentiation to the r-th-power residue group. */
Fq12 final_exponentiation(const Fq12 &f);

/** Full pairing e(P, Q). */
Fq12 pairing(const G1Affine &p, const G2Affine &q);

/**
 * Product pairing check: returns true iff prod_i e(P_i, Q_i) == 1.
 * This is the primitive the PCS verifier uses.
 */
bool pairing_product_is_one(std::span<const G1Affine> ps,
                            std::span<const G2Affine> qs);

}  // namespace zkspeed::curve
