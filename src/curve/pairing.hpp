/**
 * @file
 * Optimal-ate pairing on BLS12-381.
 *
 * e: G1 x G2 -> GT (the r-th roots of unity in Fq12). Used by the
 * multilinear-KZG verifier to check polynomial-opening proofs:
 *   e(C - v g, h) == prod_i e(pi_i, h^{tau_i} - z_i h).
 *
 * Implementation notes: Miller loop over |x| = 0xd201000000010000 with
 * homogeneous-projective line evaluation (M-twist, mul_by_014 sparse
 * multiplication), conjugation at the end because the BLS parameter is
 * negative. The final exponentiation uses the cheap "easy part"
 * ((q^6-1)(q^2+1) via conjugate/inverse and one pow) and performs the hard
 * part as a plain exponentiation by (q^4 - q^2 + 1)/r, derived at runtime
 * by big-integer division so no hand-copied chain constants are required.
 * This trades speed for transparency; pairings are only on the verifier
 * path, which the paper leaves on the CPU.
 */
#pragma once

#include <span>

#include "curve/fq12.hpp"
#include "curve/g1.hpp"
#include "curve/g2.hpp"

namespace zkspeed::curve {

/** Miller loop without final exponentiation. */
Fq12 miller_loop(const G1Affine &p, const G2Affine &q);

/** Product of Miller loops (shares one final exponentiation). */
Fq12 multi_miller_loop(std::span<const G1Affine> ps,
                       std::span<const G2Affine> qs);

/** Final exponentiation to the r-th-power residue group. */
Fq12 final_exponentiation(const Fq12 &f);

/** Full pairing e(P, Q). */
Fq12 pairing(const G1Affine &p, const G2Affine &q);

/**
 * Product pairing check: returns true iff prod_i e(P_i, Q_i) == 1.
 * This is the primitive the PCS verifier uses.
 */
bool pairing_product_is_one(std::span<const G1Affine> ps,
                            std::span<const G2Affine> qs);

}  // namespace zkspeed::curve
