/**
 * @file
 * Quadratic extension Fq12 = Fq6[w] / (w^2 - v).
 *
 * Target group of the BLS12-381 pairing.
 */
#pragma once

#include "curve/fq6.hpp"

namespace zkspeed::curve {

class Fq12
{
  public:
    Fq6 c0{};
    Fq6 c1{};

    constexpr Fq12() = default;
    Fq12(const Fq6 &a, const Fq6 &b) : c0(a), c1(b) {}

    static Fq12 zero() { return Fq12(); }
    static Fq12 one() { return Fq12(Fq6::one(), Fq6::zero()); }

    bool operator==(const Fq12 &o) const = default;
    bool is_one() const { return c0.is_one() && c1.is_zero(); }

    Fq12 operator+(const Fq12 &o) const { return {c0 + o.c0, c1 + o.c1}; }
    Fq12 operator-(const Fq12 &o) const { return {c0 - o.c0, c1 - o.c1}; }

    Fq12
    operator*(const Fq12 &o) const
    {
        Fq6 aa = c0 * o.c0;
        Fq6 bb = c1 * o.c1;
        Fq6 cc = (c0 + c1) * (o.c0 + o.c1);
        return {aa + bb.mul_by_nonresidue(), cc - aa - bb};
    }

    Fq12 &operator*=(const Fq12 &o) { return *this = *this * o; }

    Fq12 square() const { return *this * *this; }

    /**
     * Sparse multiplication by an element with Fq2 coefficients
     * (c0 + c1 v) + (c4 v) w — the shape produced by Miller-loop line
     * evaluations on an M-twist curve.
     */
    Fq12
    mul_by_014(const Fq2 &d0, const Fq2 &d1, const Fq2 &d4) const
    {
        Fq6 aa = c0.mul_by_01(d0, d1);
        Fq6 bb = c1.mul_by_1(d4);
        Fq2 o = d1 + d4;
        Fq6 new_c1 = (c0 + c1).mul_by_01(d0, o) - aa - bb;
        Fq6 new_c0 = bb.mul_by_nonresidue() + aa;
        return {new_c0, new_c1};
    }

    /** Conjugation c0 - c1 w; equals x^{q^6} (the "unitary inverse"). */
    Fq12 conjugate() const { return {c0, -c1}; }

    Fq12
    inverse() const
    {
        Fq6 t = (c0.square() - c1.square().mul_by_nonresidue()).inverse();
        return {c0 * t, -(c1 * t)};
    }

    template <size_t N>
    Fq12
    pow(const ff::BigInt<N> &e) const
    {
        Fq12 r = one();
        for (size_t i = e.num_bits(); i-- > 0;) {
            r = r.square();
            if (e.bit(i)) r = r * *this;
        }
        return r;
    }
};

}  // namespace zkspeed::curve
