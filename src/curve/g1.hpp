/**
 * @file
 * The BLS12-381 G1 group: E(Fq) with y^2 = x^3 + 4.
 *
 * HyperPlonk commitments are MSMs over G1 points (381-bit coordinates).
 */
#pragma once

#include "curve/point.hpp"
#include "ff/fq.hpp"

namespace zkspeed::curve {

struct G1Params {
    using Field = ff::Fq;

    /** Curve constant b = 4. */
    static Field
    b()
    {
        static const Field kB = Field::from_uint(4);
        return kB;
    }

    /** The standard BLS12-381 G1 generator. */
    static AffinePoint<G1Params> generator();
};

using G1Affine = AffinePoint<G1Params>;
using G1 = JacobianPoint<G1Params>;

/** Generator as a Jacobian point. */
inline G1
g1_generator()
{
    return G1::from_affine(G1Params::generator());
}

}  // namespace zkspeed::curve
