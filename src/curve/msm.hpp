/**
 * @file
 * Multi-scalar multiplication (Pippenger's algorithm) and the Sparse MSM
 * of HyperPlonk witness commitments.
 *
 * MSMs compute sum_i s_i * P_i and are the compute-bound bottleneck of the
 * prover (paper Sections 2.4, 4.2). Witness MLEs are "sparse": roughly 90%
 * of scalars are 0 or 1 (paper Section 3.3.1); the sparse path adds the
 * 1-scalar points directly and runs Pippenger only on the dense remainder,
 * exactly like the zkSpeed/SZKP scheme.
 *
 * The dense kernel uses signed-digit (wNAF-style) windows, which halve the
 * bucket count, and accumulates buckets in affine coordinates with batched
 * inversion over the pending-add slopes — the software twin of the paper's
 * bucket-aggregation scheme (Section 4.2 / bench_fig5), built on the
 * ff::batch_inverse idiom of bench_fig8. See DESIGN.md section 12.
 */
#pragma once

#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "curve/g1.hpp"
#include "ff/fr.hpp"

namespace zkspeed::curve {

/** Scalar population statistics gathered by the sparse MSM. */
struct MsmStats {
    size_t zeros = 0;   ///< scalars equal to 0 (skipped entirely)
    size_t ones = 0;    ///< scalars equal to 1 (tree-summed, no Pippenger)
    size_t dense = 0;   ///< full-width scalars (Pippenger)
};

/**
 * Structured error for an MSM called with points.size() !=
 * scalars.size(). A silent identity return here turns a caller bug into
 * a wrong-but-valid-looking commitment, so the mismatch throws with both
 * lengths attached (same idiom as lookup::TableSizeError).
 */
class MsmSizeError : public std::runtime_error
{
  public:
    MsmSizeError(const char *where, size_t points_, size_t scalars_)
        : std::runtime_error(std::string(where) + ": points/scalars length "
                             "mismatch (" + std::to_string(points_) +
                             " points vs " + std::to_string(scalars_) +
                             " scalars) — an MSM over misaligned spans "
                             "would silently commit to the wrong value"),
          points(points_), scalars(scalars_)
    {}

    size_t points;   ///< number of base points passed
    size_t scalars;  ///< number of scalars passed
};

/**
 * Heuristic Pippenger window size (bits) for an n-point MSM,
 * approximately log2(n) - 3, clamped to [2, 16]. User-supplied window
 * overrides outside [2, 16] are clamped to the same range (a shift by
 * >= 64 bits is UB and 2^w buckets per worker must stay bounded).
 */
unsigned pippenger_window_size(size_t n);

/** Clamp of user-supplied window overrides; [2, 16]. */
inline constexpr unsigned kMinWindowBits = 2;
inline constexpr unsigned kMaxWindowBits = 16;

/**
 * Dense MSM via Pippenger's bucket method (signed digits + affine
 * batch-add bucket accumulation).
 *
 * @param points base points (affine).
 * @param scalars multipliers, same length as points.
 * @param window window size in bits; 0 selects automatically, other
 *        values are clamped to [kMinWindowBits, kMaxWindowBits].
 * @throws MsmSizeError when the span lengths differ.
 */
G1 msm(std::span<const G1Affine> points, std::span<const ff::Fr> scalars,
       unsigned window = 0);

/**
 * Sparse MSM: skips zero scalars, tree-sums one-scalar points, and runs
 * Pippenger on the dense remainder.
 *
 * @param stats optional out-parameter for the scalar population.
 * @throws MsmSizeError when the span lengths differ.
 */
G1 msm_sparse(std::span<const G1Affine> points,
              std::span<const ff::Fr> scalars, MsmStats *stats = nullptr,
              unsigned window = 0);

/**
 * Pairwise (binary-tree) sum of affine points. This mirrors the zkSpeed
 * tree-based accumulation of 1-valued-scalar points through the pipelined
 * PADD (paper Section 4.2).
 */
G1 tree_sum(std::span<const G1Affine> points);

/** Naive reference MSM (double-and-add per point); used in tests only.
 * @throws MsmSizeError when the span lengths differ. */
G1 msm_naive(std::span<const G1Affine> points,
             std::span<const ff::Fr> scalars);

/**
 * The pre-PR 8 Pippenger kernel (unsigned digits, Jacobian bucket
 * accumulation), kept verbatim as the bench_msm baseline and as an
 * independent correctness cross-check for the signed-digit kernel.
 * Same validation and window clamping as msm().
 */
G1 msm_reference(std::span<const G1Affine> points,
                 std::span<const ff::Fr> scalars, unsigned window = 0);

}  // namespace zkspeed::curve
