/**
 * @file
 * Multi-scalar multiplication (Pippenger's algorithm) and the Sparse MSM
 * of HyperPlonk witness commitments.
 *
 * MSMs compute sum_i s_i * P_i and are the compute-bound bottleneck of the
 * prover (paper Sections 2.4, 4.2). Witness MLEs are "sparse": roughly 90%
 * of scalars are 0 or 1 (paper Section 3.3.1); the sparse path adds the
 * 1-scalar points directly and runs Pippenger only on the dense remainder,
 * exactly like the zkSpeed/SZKP scheme.
 */
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "curve/g1.hpp"
#include "ff/fr.hpp"

namespace zkspeed::curve {

/** Scalar population statistics gathered by the sparse MSM. */
struct MsmStats {
    size_t zeros = 0;   ///< scalars equal to 0 (skipped entirely)
    size_t ones = 0;    ///< scalars equal to 1 (tree-summed, no Pippenger)
    size_t dense = 0;   ///< full-width scalars (Pippenger)
};

/**
 * Heuristic Pippenger window size (bits) for an n-point MSM,
 * approximately log2(n) - 3, clamped to [2, 16].
 */
unsigned pippenger_window_size(size_t n);

/**
 * Dense MSM via Pippenger's bucket method.
 *
 * @param points base points (affine).
 * @param scalars multipliers, same length as points.
 * @param window window size in bits; 0 selects automatically.
 */
G1 msm(std::span<const G1Affine> points, std::span<const ff::Fr> scalars,
       unsigned window = 0);

/**
 * Sparse MSM: skips zero scalars, tree-sums one-scalar points, and runs
 * Pippenger on the dense remainder.
 *
 * @param stats optional out-parameter for the scalar population.
 */
G1 msm_sparse(std::span<const G1Affine> points,
              std::span<const ff::Fr> scalars, MsmStats *stats = nullptr,
              unsigned window = 0);

/**
 * Pairwise (binary-tree) sum of affine points. This mirrors the zkSpeed
 * tree-based accumulation of 1-valued-scalar points through the pipelined
 * PADD (paper Section 4.2).
 */
G1 tree_sum(std::span<const G1Affine> points);

/** Naive reference MSM (double-and-add per point); used in tests only. */
G1 msm_naive(std::span<const G1Affine> points,
             std::span<const ff::Fr> scalars);

}  // namespace zkspeed::curve
