#include "curve/g2.hpp"

namespace zkspeed::curve {

AffinePoint<G2Params>
G2Params::generator()
{
    using ff::Fq;
    static const AffinePoint<G2Params> kGen(
        Fq2(Fq::from_hex(
                "024aa2b2f08f0a91260805272dc51051c6e47ad4fa403b02"
                "b4510b647ae3d1770bac0326a805bbefd48056c8c121bdb8"),
            Fq::from_hex(
                "13e02b6052719f607dacd3a088274f65596bd0d09920b61a"
                "b5da61bbdc7f5049334cf11213945d57e5ac7d055d042b7e")),
        Fq2(Fq::from_hex(
                "0ce5d527727d6e118cc9cdc6da2e351aadfd9baa8cbdd3a7"
                "6d429a695160d12c923ac9cc3baca289e193548608b82801"),
            Fq::from_hex(
                "0606c4a02ea734cc32acd2b02bc28b99cb3e287e85a763af"
                "267492ab572e99ab3f370d275cec1da1aaa9075ff05f79be")));
    return kGen;
}

}  // namespace zkspeed::curve
