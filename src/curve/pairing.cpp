#include "curve/pairing.hpp"

#include <array>

namespace zkspeed::curve {

namespace {

using ff::BigInt;
using ff::Fq;

/** |x| for the BLS parameter x = -0xd201000000010000. */
constexpr uint64_t kAbsX = 0xd201000000010000ULL;

/** Homogeneous projective G2 point used inside the Miller loop. */
struct G2Proj {
    Fq2 x, y, z;
};

/** Line coefficients (c0, c1, c4) feeding Fq12::mul_by_014. */
struct LineEval {
    Fq2 c0, c1, c4;
};

/**
 * Doubling step: R <- 2R, returning the tangent-line coefficients
 * (Costello-Lange-Naehrig homogeneous projective formulas, M-twist).
 */
LineEval
doubling_step(G2Proj &r)
{
    static const Fq two_inv = Fq::from_uint(2).inverse();
    Fq2 a = (r.x * r.y).scale(two_inv);
    Fq2 b = r.y.square();
    Fq2 c = r.z.square();
    Fq2 e = G2Params::b() * (c.dbl() + c);
    Fq2 f = e.dbl() + e;
    Fq2 g = (b + f).scale(two_inv);
    Fq2 h = (r.y + r.z).square() - (b + c);
    Fq2 i = e - b;
    Fq2 j = r.x.square();
    Fq2 e2 = e.square();
    r.x = a * (b - f);
    r.y = g.square() - (e2.dbl() + e2);
    r.z = b * h;
    return {i, j.dbl() + j, -h};
}

/**
 * Addition step: R <- R + Q, returning the chord-line coefficients.
 */
LineEval
addition_step(G2Proj &r, const G2Affine &q)
{
    Fq2 theta = r.y - q.y * r.z;
    Fq2 lambda = r.x - q.x * r.z;
    Fq2 c = theta.square();
    Fq2 d = lambda.square();
    Fq2 e = lambda * d;
    Fq2 f = r.z * c;
    Fq2 g = r.x * d;
    Fq2 h = e + f - g.dbl();
    r.x = lambda * h;
    r.y = theta * (g - h) - e * r.y;
    r.z = r.z * e;
    Fq2 j = theta * q.x - lambda * q.y;
    return {j, -theta, lambda};
}

/** Evaluate a line at the G1 point and fold it into f (M-twist). */
void
ell(Fq12 &f, const LineEval &line, const G1Affine &p)
{
    Fq2 c1 = line.c1.scale(p.x);
    Fq2 c4 = line.c4.scale(p.y);
    f = f.mul_by_014(line.c0, c1, c4);
}

/** Exponent of the hard part, (q^4 - q^2 + 1) / r, computed once. */
const BigInt<24> &
hard_part_exponent()
{
    static const BigInt<24> kExp = [] {
        BigInt<12> q2 = Fq::kModulus.mul_wide(Fq::kModulus);
        BigInt<24> q4 = q2.mul_wide(q2);
        BigInt<24> e = q4;
        e.sub_assign(ff::widen<24>(q2));
        e.add_assign(BigInt<24>(1));
        BigInt<24> r = ff::widen<24>(ff::Fr::kModulus);
        BigInt<24> quot, rem;
        ff::divmod(e, r, quot, rem);
        // r divides q^4 - q^2 + 1 exactly for BLS12 curves.
        return rem.is_zero() ? quot : BigInt<24>();
    }();
    return kExp;
}

}  // namespace

G2Prepared
prepare_g2(const G2Affine &q)
{
    G2Prepared prep;
    if (q.is_identity()) return prep;
    prep.infinity = false;
    G2Proj r{q.x, q.y, Fq2::one()};
    BigInt<1> x(kAbsX);
    // One doubling per bit plus one addition per set bit.
    prep.coeffs.reserve(x.num_bits() + 9);
    for (size_t bit = x.num_bits() - 1; bit-- > 0;) {
        LineEval d = doubling_step(r);
        prep.coeffs.push_back({d.c0, d.c1, d.c4});
        if (x.bit(bit)) {
            LineEval a = addition_step(r, q);
            prep.coeffs.push_back({a.c0, a.c1, a.c4});
        }
    }
    return prep;
}

Fq12
multi_miller_loop_prepared(std::span<const G1Affine> ps,
                           std::span<const G2Prepared> qs)
{
    // Collect the non-trivial pairs (identity in either slot contributes 1).
    std::vector<const G1Affine *> p_live;
    std::vector<const G2Prepared *> q_live;
    for (size_t i = 0; i < ps.size(); ++i) {
        if (!ps[i].is_identity() && !qs[i].infinity) {
            p_live.push_back(&ps[i]);
            q_live.push_back(&qs[i]);
        }
    }
    Fq12 f = Fq12::one();
    if (p_live.empty()) return f;

    std::vector<size_t> pos(q_live.size(), 0);
    BigInt<1> x(kAbsX);
    for (size_t bit = x.num_bits() - 1; bit-- > 0;) {
        f = f.square();
        for (size_t i = 0; i < q_live.size(); ++i) {
            const auto &c = q_live[i]->coeffs[pos[i]++];
            ell(f, {c.c0, c.c1, c.c4}, *p_live[i]);
        }
        if (x.bit(bit)) {
            for (size_t i = 0; i < q_live.size(); ++i) {
                const auto &c = q_live[i]->coeffs[pos[i]++];
                ell(f, {c.c0, c.c1, c.c4}, *p_live[i]);
            }
        }
    }
    // BLS parameter is negative: invert via conjugation (f is unitary
    // only after the easy part, so use the true meaning: f^{-x} at the
    // end of the loop equals conjugate in GT; pre-final-exp we must
    // conjugate f, which corresponds to the standard implementation).
    return f.conjugate();
}

Fq12
multi_miller_loop(std::span<const G1Affine> ps, std::span<const G2Affine> qs)
{
    // Fused in-place loop: the doubling/addition steps run interleaved
    // with the shared f accumulation, so one-shot pairings never
    // materialise the ~20 KB/point coefficient vectors of G2Prepared.
    // Callers that pair the same G2 points repeatedly (BatchVerifier
    // bisection probes, fixed-SRS verification) should prepare_g2 once
    // and use the *_prepared overloads instead. Step order matches
    // prepare_g2 exactly, so both paths produce identical Fq12 values
    // (asserted by test_pairing's PreparedMatchesUnprepared).
    std::vector<const G1Affine *> p_live;
    std::vector<G2Proj> r_live;
    std::vector<const G2Affine *> q_live;
    for (size_t i = 0; i < ps.size(); ++i) {
        if (!ps[i].is_identity() && !qs[i].is_identity()) {
            p_live.push_back(&ps[i]);
            r_live.push_back(G2Proj{qs[i].x, qs[i].y, Fq2::one()});
            q_live.push_back(&qs[i]);
        }
    }
    Fq12 f = Fq12::one();
    if (p_live.empty()) return f;

    BigInt<1> x(kAbsX);
    for (size_t bit = x.num_bits() - 1; bit-- > 0;) {
        f = f.square();
        for (size_t i = 0; i < r_live.size(); ++i) {
            ell(f, doubling_step(r_live[i]), *p_live[i]);
        }
        if (x.bit(bit)) {
            for (size_t i = 0; i < r_live.size(); ++i) {
                ell(f, addition_step(r_live[i], *q_live[i]), *p_live[i]);
            }
        }
    }
    // Negative BLS parameter: conjugate, as in the prepared loop.
    return f.conjugate();
}

Fq12
miller_loop(const G1Affine &p, const G2Affine &q)
{
    return multi_miller_loop(std::span(&p, 1), std::span(&q, 1));
}

Fq12
final_exponentiation(const Fq12 &f)
{
    // Easy part: f^{(q^6 - 1)(q^2 + 1)}.
    Fq12 t = f.conjugate() * f.inverse();       // f^{q^6 - 1}
    BigInt<12> q2 = Fq::kModulus.mul_wide(Fq::kModulus);
    t = t.pow(q2) * t;                          // ^(q^2 + 1)
    // Hard part: ^(q^4 - q^2 + 1)/r.
    return t.pow(hard_part_exponent());
}

Fq12
pairing(const G1Affine &p, const G2Affine &q)
{
    return final_exponentiation(miller_loop(p, q));
}

bool
pairing_product_is_one(std::span<const G1Affine> ps,
                       std::span<const G2Affine> qs)
{
    return final_exponentiation(multi_miller_loop(ps, qs)).is_one();
}

bool
pairing_product_is_one_prepared(std::span<const G1Affine> ps,
                                std::span<const G2Prepared> qs)
{
    return final_exponentiation(multi_miller_loop_prepared(ps, qs))
        .is_one();
}

}  // namespace zkspeed::curve
