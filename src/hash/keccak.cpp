#include "hash/keccak.hpp"

#include <cstring>
#include <string>

namespace zkspeed::hash {

namespace {

const std::array<uint64_t, 24> kRoundConstants = {
    0x0000000000000001ULL, 0x0000000000008082ULL, 0x800000000000808aULL,
    0x8000000080008000ULL, 0x000000000000808bULL, 0x0000000080000001ULL,
    0x8000000080008081ULL, 0x8000000000008009ULL, 0x000000000000008aULL,
    0x0000000000000088ULL, 0x0000000080008009ULL, 0x000000008000000aULL,
    0x000000008000808bULL, 0x800000000000008bULL, 0x8000000000008089ULL,
    0x8000000000008003ULL, 0x8000000000008002ULL, 0x8000000000000080ULL,
    0x000000000000800aULL, 0x800000008000000aULL, 0x8000000080008081ULL,
    0x8000000000008080ULL, 0x0000000080000001ULL, 0x8000000080008008ULL,
};

/** Rotation offsets r[x][y] of the rho step. */
const std::array<std::array<int, 5>, 5> kRho = {{
    {0, 36, 3, 41, 18},
    {1, 44, 10, 45, 2},
    {62, 6, 43, 15, 61},
    {28, 55, 25, 21, 56},
    {27, 20, 39, 8, 14},
}};

inline uint64_t
rotl(uint64_t v, int s)
{
    return s == 0 ? v : (v << s) | (v >> (64 - s));
}

}  // namespace

const std::array<uint64_t, 24> &
keccak_round_constants()
{
    return kRoundConstants;
}

const std::array<std::array<int, 5>, 5> &
keccak_rho_offsets()
{
    return kRho;
}

void
keccak_f1600(std::array<uint64_t, 25> &st)
{
    keccak_f1600(st, 24);
}

void
keccak_f1600(std::array<uint64_t, 25> &st, unsigned rounds)
{
    // State indexing: st[x + 5*y].
    for (unsigned round = 0; round < rounds && round < 24; ++round) {
        // Theta
        uint64_t c[5], d[5];
        for (int x = 0; x < 5; ++x) {
            c[x] = st[x] ^ st[x + 5] ^ st[x + 10] ^ st[x + 15] ^ st[x + 20];
        }
        for (int x = 0; x < 5; ++x) {
            d[x] = c[(x + 4) % 5] ^ rotl(c[(x + 1) % 5], 1);
            for (int y = 0; y < 5; ++y) st[x + 5 * y] ^= d[x];
        }
        // Rho + Pi
        uint64_t b[25];
        for (int x = 0; x < 5; ++x) {
            for (int y = 0; y < 5; ++y) {
                b[y + 5 * ((2 * x + 3 * y) % 5)] =
                    rotl(st[x + 5 * y], kRho[x][y]);
            }
        }
        // Chi
        for (int x = 0; x < 5; ++x) {
            for (int y = 0; y < 5; ++y) {
                st[x + 5 * y] = b[x + 5 * y] ^
                    (~b[(x + 1) % 5 + 5 * y] & b[(x + 2) % 5 + 5 * y]);
            }
        }
        // Iota
        st[0] ^= kRoundConstants[round];
    }
}

void
Sponge256::absorb_block(const uint8_t *block)
{
    for (size_t i = 0; i < kRate / 8; ++i) {
        uint64_t lane = 0;
        for (size_t b = 0; b < 8; ++b) {
            lane |= (uint64_t)block[i * 8 + b] << (8 * b);
        }
        state_[i] ^= lane;
    }
    keccak_f1600(state_);
}

void
Sponge256::absorb(std::span<const uint8_t> data)
{
    size_t off = 0;
    while (off < data.size()) {
        size_t take = std::min(kRate - buf_len_, data.size() - off);
        std::memcpy(buf_.data() + buf_len_, data.data() + off, take);
        buf_len_ += take;
        off += take;
        if (buf_len_ == kRate) {
            absorb_block(buf_.data());
            buf_len_ = 0;
        }
    }
}

Digest
Sponge256::finalize()
{
    // Multi-rate padding: domain byte then 0..0 then 0x80 (may coincide).
    std::memset(buf_.data() + buf_len_, 0, kRate - buf_len_);
    buf_[buf_len_] = domain_;
    buf_[kRate - 1] |= 0x80;
    absorb_block(buf_.data());
    Digest out;
    for (size_t i = 0; i < 4; ++i) {
        for (size_t b = 0; b < 8; ++b) {
            out[i * 8 + b] = (uint8_t)(state_[i] >> (8 * b));
        }
    }
    return out;
}

Digest
sha3_256(std::span<const uint8_t> data)
{
    Sponge256 s(0x06);
    s.absorb(data);
    return s.finalize();
}

Digest
sha3_256(std::string_view s)
{
    Sponge256 sp(0x06);
    sp.absorb(s);
    return sp.finalize();
}

Digest
keccak_256(std::span<const uint8_t> data)
{
    Sponge256 s(0x01);
    s.absorb(data);
    return s.finalize();
}

Digest
keccak_256(std::string_view s)
{
    Sponge256 sp(0x01);
    sp.absorb(s);
    return sp.finalize();
}

std::string
digest_hex(const Digest &d)
{
    static const char digits[] = "0123456789abcdef";
    std::string s;
    s.reserve(64);
    for (uint8_t b : d) {
        s.push_back(digits[b >> 4]);
        s.push_back(digits[b & 0xf]);
    }
    return s;
}

}  // namespace zkspeed::hash
