/**
 * @file
 * Keccak-f[1600] sponge and the SHA3-256 / Keccak-256 hash functions.
 *
 * zkSNARKs are made non-interactive with a SHA3-based Fiat-Shamir
 * transcript (paper Section 3.3.6); this is a from-scratch implementation
 * of the permutation and both padding variants (SHA3 domain byte 0x06 and
 * the legacy Keccak 0x01), validated against published test vectors.
 */
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <span>
#include <string_view>

namespace zkspeed::hash {

/** 256-bit digest. */
using Digest = std::array<uint8_t, 32>;

/** Apply the Keccak-f[1600] permutation (24 rounds) to a 5x5 lane state. */
void keccak_f1600(std::array<uint64_t, 25> &state);

/**
 * Reduced-round variant: apply only the first `rounds` (<= 24) rounds.
 * The in-circuit keccak gadgets (src/keccak) are round-parameterised so
 * tests and CI can prove short permutations; this is their native
 * reference. rounds = 24 is the real permutation.
 */
void keccak_f1600(std::array<uint64_t, 25> &state, unsigned rounds);

/** Round constants (iota step) of Keccak-f[1600], shared with the
 * in-circuit gadget so both sides permute identically. */
const std::array<uint64_t, 24> &keccak_round_constants();

/** Rotation offsets r[x][y] of the rho step (state index x + 5y). */
const std::array<std::array<int, 5>, 5> &keccak_rho_offsets();

/**
 * Incremental sponge with rate 136 bytes (capacity 512 bits), producing
 * 32-byte digests. The domain byte selects SHA3-256 (0x06) or Keccak-256
 * (0x01).
 */
class Sponge256
{
  public:
    explicit Sponge256(uint8_t domain = 0x06) : domain_(domain) {}

    /** Absorb a byte string. */
    void absorb(std::span<const uint8_t> data);
    void
    absorb(std::string_view s)
    {
        absorb(std::span<const uint8_t>(
            reinterpret_cast<const uint8_t *>(s.data()), s.size()));
    }

    /** Pad, permute and squeeze the 32-byte digest. Finalizes the sponge. */
    Digest finalize();

  private:
    static constexpr size_t kRate = 136;

    std::array<uint64_t, 25> state_{};
    std::array<uint8_t, kRate> buf_{};
    size_t buf_len_ = 0;
    uint8_t domain_;

    void absorb_block(const uint8_t *block);
};

/** One-shot SHA3-256. */
Digest sha3_256(std::span<const uint8_t> data);
Digest sha3_256(std::string_view s);

/** One-shot legacy Keccak-256 (0x01 padding, as used by Ethereum). */
Digest keccak_256(std::span<const uint8_t> data);
Digest keccak_256(std::string_view s);

/** Render a digest as lowercase hex (for tests and debugging). */
std::string digest_hex(const Digest &d);

}  // namespace zkspeed::hash
