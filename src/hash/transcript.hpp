/**
 * @file
 * SHA3-based Fiat-Shamir transcript.
 *
 * The transcript logs every prover message (commitments, sumcheck round
 * polynomials, claimed evaluations) by folding it into a running SHA3
 * state, and derives verifier challenges from that state. This makes all
 * challenges binding on the full history (paper Section 3.3.6: SHA3 acts
 * as an order-enforcing mechanism between protocol steps).
 */
#pragma once

#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

#include "ff/fr.hpp"
#include "hash/keccak.hpp"

namespace zkspeed::hash {

class Transcript
{
  public:
    /** @param label domain-separation label for the protocol instance. */
    explicit Transcript(std::string_view label)
    {
        state_.fill(0);
        append_bytes(label, {});
    }

    /** Absorb raw bytes under a label. */
    void
    append_bytes(std::string_view label, std::span<const uint8_t> data)
    {
        Sponge256 sponge(0x06);
        sponge.absorb(std::span<const uint8_t>(state_.data(), state_.size()));
        sponge.absorb(label);
        sponge.absorb(data);
        Digest d = sponge.finalize();
        std::copy(d.begin(), d.end(), state_.begin());
        ++absorb_count_;
    }

    /** Absorb a scalar-field element. */
    void
    append_fr(std::string_view label, const ff::Fr &x)
    {
        uint8_t buf[ff::Fr::kByteSize];
        x.to_bytes(buf);
        append_bytes(label, std::span<const uint8_t>(buf, sizeof(buf)));
    }

    /** Absorb a list of scalar-field elements. */
    void
    append_frs(std::string_view label, std::span<const ff::Fr> xs)
    {
        std::vector<uint8_t> buf(xs.size() * ff::Fr::kByteSize);
        for (size_t i = 0; i < xs.size(); ++i) {
            xs[i].to_bytes(buf.data() + i * ff::Fr::kByteSize);
        }
        append_bytes(label, buf);
    }

    /**
     * Derive a scalar-field challenge and fold the derivation back into the
     * state so successive challenges differ.
     */
    ff::Fr
    challenge_fr(std::string_view label)
    {
        Sponge256 sponge(0x06);
        sponge.absorb(std::span<const uint8_t>(state_.data(), state_.size()));
        sponge.absorb(label);
        sponge.absorb("challenge");
        Digest d = sponge.finalize();
        std::copy(d.begin(), d.end(), state_.begin());
        ++challenge_count_;
        return ff::Fr::from_bytes_reduce(d.data(), d.size());
    }

    /** Derive a vector of challenges. */
    std::vector<ff::Fr>
    challenge_frs(std::string_view label, size_t n)
    {
        std::vector<ff::Fr> out;
        out.reserve(n);
        for (size_t i = 0; i < n; ++i) out.push_back(challenge_fr(label));
        return out;
    }

    /** Number of absorb operations (used by the SHA3-unit cost model). */
    size_t absorb_count() const { return absorb_count_; }
    size_t challenge_count() const { return challenge_count_; }

  private:
    Digest state_{};
    size_t absorb_count_ = 0;
    size_t challenge_count_ = 0;
};

}  // namespace zkspeed::hash
