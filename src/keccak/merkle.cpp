#include "keccak/merkle.hpp"

#include <tuple>

#include "hash/keccak.hpp"

namespace zkspeed::keccak {

namespace {

/** Keccak-256 single-block preamble over lanes 8..24: domain byte 0x01
 * at byte 64 (lane 8), padding bit 0x80 at byte 135 (top of lane 16). */
constexpr uint64_t kDomainLane8 = 0x01ull;
constexpr uint64_t kPadLane16 = 0x8000000000000000ull;

}  // namespace

DigestLanes
node_hash(KeccakGadget &g, const DigestLanes &left,
          const DigestLanes &right)
{
    std::array<Lane, 25> st;
    for (int k = 0; k < 4; ++k) {
        st[k] = left[k];
        st[4 + k] = right[k];
    }
    st[8] = g.constant_lane(kDomainLane8);
    for (int k = 9; k < 16; ++k) st[k] = g.constant_lane(0);
    st[16] = g.constant_lane(kPadLane16);
    for (int k = 17; k < 25; ++k) st[k] = g.constant_lane(0);
    st = g.permute(std::move(st));
    return {st[0], st[1], st[2], st[3]};
}

DigestLanes
merkle_path(KeccakGadget &g, DigestLanes leaf,
            const std::vector<MerkleStep> &path)
{
    CircuitBuilder &cb = g.builder();
    DigestLanes cur = std::move(leaf);
    for (const MerkleStep &step : path) {
        DigestLanes sib;
        for (int k = 0; k < 4; ++k) {
            Var word = cb.add_variable(Fr::from_uint(step.sibling[k]));
            sib[k] = g.from_var(word);
        }
        Var dir =
            cb.add_variable(step.right ? Fr::one() : Fr::zero());
        cb.assert_boolean(dir);
        DigestLanes left, right;
        for (int k = 0; k < 4; ++k) {
            // dir = 1 (current node is the right child): left = sib.
            std::tie(left[k], right[k]) =
                g.mux_swap(dir, sib[k], cur[k]);
        }
        cur = node_hash(g, left, right);
    }
    return cur;
}

DigestWords
native_node(const DigestWords &left, const DigestWords &right,
            unsigned rounds)
{
    std::array<uint64_t, 25> st{};
    for (int k = 0; k < 4; ++k) {
        st[k] = left[k];
        st[4 + k] = right[k];
    }
    st[8] ^= kDomainLane8;
    st[16] ^= kPadLane16;
    hash::keccak_f1600(st, rounds);
    return {st[0], st[1], st[2], st[3]};
}

DigestWords
native_path(DigestWords leaf, const std::vector<MerkleStep> &path,
            unsigned rounds)
{
    for (const MerkleStep &step : path) {
        leaf = step.right ? native_node(step.sibling, leaf, rounds)
                          : native_node(leaf, step.sibling, rounds);
    }
    return leaf;
}

DigestWords
digest_to_words(const std::array<uint8_t, 32> &digest)
{
    DigestWords w{};
    for (size_t i = 0; i < 4; ++i) {
        for (size_t b = 0; b < 8; ++b) {
            w[i] |= uint64_t(digest[i * 8 + b]) << (8 * b);
        }
    }
    return w;
}

}  // namespace zkspeed::keccak
