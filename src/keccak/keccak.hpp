/**
 * @file
 * In-circuit Keccak-f[1600] on fused multi-table lookups.
 *
 * Every 64-bit lane is held as `64 / limb_bits` table-width limbs (LSB
 * first); the round functions then reduce to per-limb table lookups and
 * copy wiring (DESIGN.md Section 9):
 *
 *   theta / iota  XOR via the xor(limb_bits) table — one lookup per
 *                 limb, which also range-checks both operands for free;
 *   chi           out = a ^ (~b & c): a chi(limb_bits) table row
 *                 (b, c, ~b & c) followed by one XOR lookup;
 *   rho / pi      rotation by a limb multiple is pure relabelling (zero
 *                 gates); a sub-limb residue s splits each limb at the
 *                 rotation cut (hi = top s bits, lo = rest) with two
 *                 range-table lookups and recombines with one linear
 *                 gate per limb.
 *
 * One KeccakGadget registers its whole table bank — xor, chi and the
 * sub-limb range widths — through CircuitBuilder::add_table, so a
 * single tagged LogUp argument proves every lookup the permutation
 * makes. The gate_based mode is the benchmark baseline: 1-bit limbs,
 * logic gates instead of lookups (rotations stay free), the circuit
 * bench_keccak_circuit measures the lookup path against.
 *
 * The permutation is round-parameterised (ZKSPEED_KECCAK_ROUNDS in CI):
 * tests compare reduced-round circuits against the reduced-round native
 * reference hash::keccak_f1600(state, rounds), and full 24-round
 * witnesses against the real SHA3/Keccak digests.
 */
#pragma once

#include <array>
#include <cstdint>
#include <unordered_map>
#include <utility>
#include <vector>

#include "hyperplonk/circuit.hpp"

namespace zkspeed::keccak {

using ff::Fr;
using hyperplonk::CircuitBuilder;
using hyperplonk::Var;

/** Shape of an in-circuit keccak instance. */
struct KeccakParams {
    /** Permutation rounds (1..24; 24 is the real Keccak-f[1600]). */
    unsigned rounds = 24;
    /** Table width: lanes decompose into 64/limb_bits limbs. Must
     * divide 64 and stay <= 8 (the xor/chi tables have 2^{2b} rows). */
    unsigned limb_bits = 4;
    /** Benchmark baseline: 1-bit lanes on boolean logic gates, no
     * lookup tables (rho/pi still free). */
    bool gate_based = false;

    static KeccakParams
    lookup(unsigned rounds_ = 24, unsigned limb_bits_ = 4)
    {
        return KeccakParams{rounds_, limb_bits_, false};
    }
    static KeccakParams
    gates(unsigned rounds_ = 24)
    {
        return KeccakParams{rounds_, 1, true};
    }
};

/** One 64-bit lane as limb variables, least-significant limb first. */
struct Lane {
    std::vector<Var> limbs;
};

/**
 * Builds Keccak-f[1600] circuitry on a CircuitBuilder. Constructing the
 * gadget registers its lookup tables (lookup mode); all lane ops and
 * the permutation then append gates. One gadget may be reused for any
 * number of permutations in the same circuit — the tables are shared.
 */
class KeccakGadget
{
  public:
    KeccakGadget(CircuitBuilder &cb, const KeccakParams &params);

    const KeccakParams &params() const { return params_; }
    unsigned limb_bits() const { return width_; }
    unsigned limbs_per_lane() const { return 64 / width_; }
    CircuitBuilder &builder() { return cb_; }

    /** Decompose an existing variable into a range-checked lane and
     * constrain the weighted limb sum to reconstruct it (so the value
     * is also proved < 2^64). */
    Lane from_var(Var v);

    /** Recompose a lane into one variable holding its 64-bit value. */
    Var to_var(const Lane &lane);

    /** Lane of pinned constants (cached per limb value). */
    Lane constant_lane(uint64_t value);

    /** Native value currently assigned to a lane (witness side). */
    uint64_t value(const Lane &lane) const;

    Lane lane_xor(const Lane &a, const Lane &b);
    /** Keccak chi nonlinearity: a ^ (~b & c). */
    Lane lane_chi(const Lane &a, const Lane &b, const Lane &c);
    /** Cyclic left rotation by r bits (0 gates when r is a limb
     * multiple; otherwise a split/recombine per limb). */
    Lane rotl(const Lane &a, unsigned r);
    Lane xor_constant(const Lane &a, uint64_t c);
    /** Conditional swap: {sel ? a : b, sel ? b : a} for boolean sel.
     * The second output reuses the first's sel*(a-b) product (4 gates
     * per limb instead of two 3-gate muxes), which is what every
     * Merkle level's (left, right) ordering needs. */
    std::pair<Lane, Lane> mux_swap(Var sel, const Lane &a,
                                   const Lane &b);

    /** The round-parameterised permutation over the 5x5 state
     * (index x + 5y, matching hash::keccak_f1600). */
    std::array<Lane, 25> permute(std::array<Lane, 25> state);

  private:
    Var constant_var(uint64_t v);
    Var zero_var() { return constant_var(0); }
    uint64_t value64(Var v) const;
    /** One range-table lookup asserting v < 2^w (w < limb_bits). */
    void assert_width(Var v, unsigned w);

    CircuitBuilder &cb_;
    KeccakParams params_;
    unsigned width_;  ///< limb width (1 in gate_based mode)
    size_t xor_tag_ = 0;
    size_t chi_tag_ = 0;
    /** range_tag_[w] proves values < 2^w, w in 1..width_-1. */
    std::array<size_t, 8> range_tag_{};
    std::unordered_map<uint64_t, Var> const_cache_;
};

}  // namespace zkspeed::keccak
