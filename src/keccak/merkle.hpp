/**
 * @file
 * Keccak-256 sponge wrapper and Merkle-path gadget on the in-circuit
 * permutation (src/keccak/keccak.hpp).
 *
 * A Merkle node digest is keccak_256(left || right) of two 32-byte
 * child digests: 64 bytes fit in one rate-136 block, so each tree
 * level costs exactly one permutation. Digests travel as 4 little-
 * endian 64-bit lanes (matching hash::Digest byte order); the sponge
 * preamble — domain byte 0x01 at position 64, final bit 0x80 at
 * position 135 — lands in constant lanes 8 and 16.
 *
 * Every circuit function has a `native_*` twin computing the same
 * digest in software at the same round count, so tests/scenarios can
 * derive expected roots for reduced-round instances; at rounds = 24
 * the native twins agree with hash::keccak_256 byte for byte.
 */
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "keccak/keccak.hpp"

namespace zkspeed::keccak {

/** A 256-bit digest as 4 little-endian 64-bit words. */
using DigestWords = std::array<uint64_t, 4>;

/** One Merkle authentication step: the sibling digest and whether the
 * current node is the right child. */
struct MerkleStep {
    DigestWords sibling{};
    bool right = false;
};

/** A digest as 4 in-circuit lanes. */
using DigestLanes = std::array<Lane, 4>;

/** One sponge block: node digest = keccak_256(left || right), costing
 * a single permutation at the gadget's round count. */
DigestLanes node_hash(KeccakGadget &g, const DigestLanes &left,
                      const DigestLanes &right);

/**
 * Merkle membership path: fold the leaf digest up through `path`
 * (leaf level first). Each level muxes (current, sibling) into
 * (left, right) on an in-circuit boolean direction wire, then hashes
 * one node. Returns the root digest lanes.
 */
DigestLanes merkle_path(KeccakGadget &g, DigestLanes leaf,
                        const std::vector<MerkleStep> &path);

/** Native twin of node_hash at the same round count. */
DigestWords native_node(const DigestWords &left, const DigestWords &right,
                        unsigned rounds);

/** Native twin of merkle_path. */
DigestWords native_path(DigestWords leaf,
                        const std::vector<MerkleStep> &path,
                        unsigned rounds);

/** hash::Digest -> 4 little-endian words (the circuit's digest form). */
DigestWords digest_to_words(const std::array<uint8_t, 32> &digest);

}  // namespace zkspeed::keccak
