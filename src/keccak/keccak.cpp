#include "keccak/keccak.hpp"

#include <stdexcept>

#include "hash/keccak.hpp"
#include "lookup/table.hpp"

namespace zkspeed::keccak {

KeccakGadget::KeccakGadget(CircuitBuilder &cb, const KeccakParams &params)
    : cb_(cb), params_(params),
      width_(params.gate_based ? 1 : params.limb_bits)
{
    if (params_.rounds == 0 || params_.rounds > 24) {
        throw std::logic_error("KeccakGadget: rounds must be in 1..24");
    }
    if (width_ == 0 || 64 % width_ != 0 || width_ > 8) {
        throw std::logic_error(
            "KeccakGadget: limb_bits must divide 64 and stay <= 8");
    }
    if (!params_.gate_based) {
        xor_tag_ = cb_.add_table(lookup::Table::xor_table(width_));
        chi_tag_ = cb_.add_table(lookup::Table::chi_table(width_));
        for (unsigned w = 1; w < width_; ++w) {
            range_tag_[w] = cb_.add_table(lookup::Table::range(w));
        }
    }
}

uint64_t
KeccakGadget::value64(Var v) const
{
    return cb_.value(v).to_repr().limbs[0];
}

Var
KeccakGadget::constant_var(uint64_t v)
{
    auto it = const_cache_.find(v);
    if (it != const_cache_.end()) return it->second;
    Var var = cb_.add_variable(Fr::from_uint(v));
    cb_.assert_constant(var, Fr::from_uint(v));
    const_cache_.emplace(v, var);
    return var;
}

void
KeccakGadget::assert_width(Var v, unsigned w)
{
    cb_.add_lookup_gate(range_tag_[w], v, zero_var(), zero_var());
}

Lane
KeccakGadget::from_var(Var v)
{
    const unsigned L = limbs_per_lane();
    const uint64_t mask = width_ == 64 ? ~0ull : (1ull << width_) - 1;
    const uint64_t val = value64(v);
    Lane lane;
    lane.limbs.reserve(L);
    for (unsigned i = 0; i < L; ++i) {
        uint64_t lv = (val >> (width_ * i)) & mask;
        Var l = cb_.add_variable(Fr::from_uint(lv));
        if (params_.gate_based) {
            cb_.assert_boolean(l);
        } else {
            // (l, 0, l) is an xor-table row iff l < 2^width: the XOR
            // bank doubles as the limb range check.
            cb_.add_lookup_gate(xor_tag_, l, zero_var(), l);
        }
        lane.limbs.push_back(l);
    }
    // The recomposition chain pins the limbs to v (and therefore
    // proves v < 2^64).
    cb_.assert_equal(to_var(lane), v);
    return lane;
}

Var
KeccakGadget::to_var(const Lane &lane)
{
    Var acc = lane.limbs[0];
    Fr acc_val = cb_.value(acc);
    for (size_t i = 1; i < lane.limbs.size(); ++i) {
        Fr w = Fr::from_uint(1ull << (width_ * i));
        Fr next_val = acc_val + w * cb_.value(lane.limbs[i]);
        Var next = cb_.add_variable(next_val);
        cb_.add_custom_gate(Fr::one(), w, Fr::zero(), Fr::one(),
                            Fr::zero(), acc, lane.limbs[i], next);
        acc = next;
        acc_val = next_val;
    }
    return acc;
}

Lane
KeccakGadget::constant_lane(uint64_t value)
{
    const unsigned L = limbs_per_lane();
    const uint64_t mask = (width_ == 64) ? ~0ull : (1ull << width_) - 1;
    Lane lane;
    lane.limbs.reserve(L);
    for (unsigned i = 0; i < L; ++i) {
        lane.limbs.push_back(constant_var((value >> (width_ * i)) & mask));
    }
    return lane;
}

uint64_t
KeccakGadget::value(const Lane &lane) const
{
    uint64_t v = 0;
    for (size_t i = 0; i < lane.limbs.size(); ++i) {
        v |= value64(lane.limbs[i]) << (width_ * i);
    }
    return v;
}

Lane
KeccakGadget::lane_xor(const Lane &a, const Lane &b)
{
    Lane out;
    out.limbs.reserve(a.limbs.size());
    for (size_t i = 0; i < a.limbs.size(); ++i) {
        uint64_t va = value64(a.limbs[i]);
        uint64_t vb = value64(b.limbs[i]);
        Var o = cb_.add_variable(Fr::from_uint(va ^ vb));
        if (params_.gate_based) {
            // o = a + b - 2ab on boolean limbs.
            cb_.add_custom_gate(Fr::one(), Fr::one(), -Fr::from_uint(2),
                                Fr::one(), Fr::zero(), a.limbs[i],
                                b.limbs[i], o);
        } else {
            cb_.add_lookup_gate(xor_tag_, a.limbs[i], b.limbs[i], o);
        }
        out.limbs.push_back(o);
    }
    return out;
}

Lane
KeccakGadget::lane_chi(const Lane &a, const Lane &b, const Lane &c)
{
    const uint64_t mask = (width_ == 64) ? ~0ull : (1ull << width_) - 1;
    Lane out;
    out.limbs.reserve(a.limbs.size());
    for (size_t i = 0; i < a.limbs.size(); ++i) {
        uint64_t va = value64(a.limbs[i]);
        uint64_t vb = value64(b.limbs[i]);
        uint64_t vc = value64(c.limbs[i]);
        uint64_t vt = ~vb & vc & mask;
        Var t = cb_.add_variable(Fr::from_uint(vt));
        Var o = cb_.add_variable(Fr::from_uint(va ^ vt));
        if (params_.gate_based) {
            // t = c - bc (i.e. (~b & c) on booleans), then o = a XOR t.
            cb_.add_custom_gate(Fr::zero(), Fr::one(), -Fr::one(),
                                Fr::one(), Fr::zero(), b.limbs[i],
                                c.limbs[i], t);
            cb_.add_custom_gate(Fr::one(), Fr::one(), -Fr::from_uint(2),
                                Fr::one(), Fr::zero(), a.limbs[i], t, o);
        } else {
            cb_.add_lookup_gate(chi_tag_, b.limbs[i], c.limbs[i], t);
            cb_.add_lookup_gate(xor_tag_, a.limbs[i], t, o);
        }
        out.limbs.push_back(o);
    }
    return out;
}

Lane
KeccakGadget::rotl(const Lane &a, unsigned r)
{
    const unsigned L = limbs_per_lane();
    r %= 64;
    const unsigned q = r / width_;
    const unsigned s = r % width_;
    // Limb-multiple part: pure relabelling (the rho/pi copy wiring).
    Lane rot;
    rot.limbs.resize(L);
    for (unsigned i = 0; i < L; ++i) {
        rot.limbs[i] = a.limbs[(i + L - q) % L];
    }
    if (s == 0) return rot;
    // Sub-limb residue: split every limb at the rotation cut
    // (limb = hi * 2^{width-s} + lo), range-check both halves, then
    // out_i = lo_i * 2^s + hi_{i-1} (cyclic).
    std::vector<Var> hi(L), lo(L);
    std::vector<uint64_t> hi_v(L), lo_v(L);
    const Fr cut = Fr::from_uint(1ull << (width_ - s));
    for (unsigned i = 0; i < L; ++i) {
        uint64_t v = value64(rot.limbs[i]);
        hi_v[i] = v >> (width_ - s);
        lo_v[i] = v & ((1ull << (width_ - s)) - 1);
        hi[i] = cb_.add_variable(Fr::from_uint(hi_v[i]));
        lo[i] = cb_.add_variable(Fr::from_uint(lo_v[i]));
        cb_.add_custom_gate(cut, Fr::one(), Fr::zero(), Fr::one(),
                            Fr::zero(), hi[i], lo[i], rot.limbs[i]);
        assert_width(hi[i], s);
        assert_width(lo[i], width_ - s);
    }
    Lane out;
    out.limbs.resize(L);
    const Fr shift = Fr::from_uint(1ull << s);
    for (unsigned i = 0; i < L; ++i) {
        unsigned prev = (i + L - 1) % L;
        Var o = cb_.add_variable(
            Fr::from_uint((lo_v[i] << s) | hi_v[prev]));
        cb_.add_custom_gate(shift, Fr::one(), Fr::zero(), Fr::one(),
                            Fr::zero(), lo[i], hi[prev], o);
        out.limbs[i] = o;
    }
    return out;
}

Lane
KeccakGadget::xor_constant(const Lane &a, uint64_t c)
{
    const uint64_t mask = (width_ == 64) ? ~0ull : (1ull << width_) - 1;
    Lane out;
    out.limbs.reserve(a.limbs.size());
    for (size_t i = 0; i < a.limbs.size(); ++i) {
        uint64_t climb = (c >> (width_ * i)) & mask;
        if (climb == 0) {
            // XOR with zero is the identity: reuse the limb.
            out.limbs.push_back(a.limbs[i]);
            continue;
        }
        uint64_t va = value64(a.limbs[i]);
        Var o = cb_.add_variable(Fr::from_uint(va ^ climb));
        if (params_.gate_based) {
            // climb == 1 on boolean limbs: o = 1 - a.
            cb_.add_custom_gate(-Fr::one(), Fr::zero(), Fr::zero(),
                                Fr::one(), Fr::one(), a.limbs[i],
                                a.limbs[i], o);
        } else {
            cb_.add_lookup_gate(xor_tag_, a.limbs[i], constant_var(climb),
                                o);
        }
        out.limbs.push_back(o);
    }
    return out;
}

std::pair<Lane, Lane>
KeccakGadget::mux_swap(Var sel, const Lane &a, const Lane &b)
{
    // first = b + sel * (a - b), second = a - sel * (a - b).
    Lane first, second;
    first.limbs.reserve(a.limbs.size());
    second.limbs.reserve(a.limbs.size());
    for (size_t i = 0; i < a.limbs.size(); ++i) {
        Var diff = cb_.add_subtraction(a.limbs[i], b.limbs[i]);
        Var scaled = cb_.add_multiplication(sel, diff);
        first.limbs.push_back(cb_.add_addition(b.limbs[i], scaled));
        second.limbs.push_back(
            cb_.add_subtraction(a.limbs[i], scaled));
    }
    return {std::move(first), std::move(second)};
}

std::array<Lane, 25>
KeccakGadget::permute(std::array<Lane, 25> st)
{
    const auto &rc = hash::keccak_round_constants();
    const auto &rho = hash::keccak_rho_offsets();
    for (unsigned round = 0; round < params_.rounds; ++round) {
        // Theta
        std::array<Lane, 5> c, d;
        for (int x = 0; x < 5; ++x) {
            c[x] = lane_xor(st[x], st[x + 5]);
            c[x] = lane_xor(c[x], st[x + 10]);
            c[x] = lane_xor(c[x], st[x + 15]);
            c[x] = lane_xor(c[x], st[x + 20]);
        }
        for (int x = 0; x < 5; ++x) {
            d[x] = lane_xor(c[(x + 4) % 5], rotl(c[(x + 1) % 5], 1));
        }
        for (int x = 0; x < 5; ++x) {
            for (int y = 0; y < 5; ++y) {
                st[x + 5 * y] = lane_xor(st[x + 5 * y], d[x]);
            }
        }
        // Rho + Pi (copy wiring plus sub-limb splits)
        std::array<Lane, 25> b;
        for (int x = 0; x < 5; ++x) {
            for (int y = 0; y < 5; ++y) {
                b[y + 5 * ((2 * x + 3 * y) % 5)] =
                    rotl(st[x + 5 * y], unsigned(rho[x][y]));
            }
        }
        // Chi
        for (int x = 0; x < 5; ++x) {
            for (int y = 0; y < 5; ++y) {
                st[x + 5 * y] =
                    lane_chi(b[x + 5 * y], b[(x + 1) % 5 + 5 * y],
                             b[(x + 2) % 5 + 5 * y]);
            }
        }
        // Iota
        st[0] = xor_constant(st[0], rc[round]);
    }
    return st;
}

}  // namespace zkspeed::keccak
