/**
 * @file
 * Plonk-encoded circuits: selectors, witness wires and the wiring
 * permutation.
 *
 * Every operation of the proved program maps to a gate satisfying
 *   f = qL w1 + qR w2 + qM w1 w2 - qO w3 + qC = 0        (paper Eq. 1)
 * and gates are connected by copy constraints encoded as a permutation
 * over the 3 * 2^mu wire slots (paper Section 3.1 / 3.3.3). The
 * CircuitBuilder assembles gates over named variables and derives the
 * sigma MLEs from the variable-usage cycles.
 */
#pragma once

#include <array>
#include <cstdint>
#include <random>
#include <vector>

#include "lookup/table.hpp"
#include "mle/mle.hpp"

namespace zkspeed::hyperplonk {

using ff::Fr;
using mle::Mle;

/** The preprocessed (witness-independent) part of a circuit. */
struct CircuitIndex {
    size_t num_vars = 0;  ///< mu: the circuit has 2^mu gates
    Mle q_l, q_r, q_m, q_o, q_c;
    /**
     * High-degree custom-gate selector (the Jellyfish-style extension
     * discussed in the paper's Section 8): when enabled, the gate
     * constraint gains a term q_H * w1^5, so one gate implements the
     * x^5 S-box that costs three plain gates. Raises the Gate-Identity
     * ZeroCheck degree from 4 to 7.
     */
    Mle q_h;
    /** Whether any q_H gate exists (changes proof shape: 23 claims). */
    bool custom_gates = false;
    /** sigma_j[i] = global index of the wire slot that slot (j, i) is
     * copy-constrained to (identity for free slots). Global index of slot
     * (j, i) is j * 2^mu + i. */
    std::array<Mle, 3> sigma;
    /** Number of public inputs, stored in w1 of the first gates. */
    size_t num_public = 0;

    /**
     * Lookup argument (src/lookup, DESIGN.md Section 8). When enabled,
     * rows with q_lookup = k != 0 assert their wire triple (w1, w2, w3)
     * equals some row of the table with tag k. All registered tables
     * are concatenated into one bank: `table_tag[j]` names the table
     * owning bank row j and `table_row_counts` records each table's
     * height in registration order (tag k owns the k-th slice). The
     * bank occupies the same hypercube index space as the gates but
     * consumes no gate slots; rows past `table_rows` are padding
     * (copies of row 0, tag included). Changes the proof shape: 3
     * extra commitments, a degree-3 LookupCheck sumcheck, a 7th
     * opening point and 11 extra claims.
     */
    bool has_lookup = false;
    Mle q_lookup;
    /** Bank tag column: tag of the table owning each bank row. */
    Mle table_tag;
    std::array<Mle, 3> table;
    /** Real bank rows before padding (0 when has_lookup is false). */
    size_t table_rows = 0;
    /** Per-table heights in tag order (empty when has_lookup false). */
    std::vector<uint64_t> table_row_counts;

    size_t num_tables() const { return table_row_counts.size(); }

    size_t num_gates() const { return size_t(1) << num_vars; }

    /** Active lookup rows (0 when the circuit has no lookup argument). */
    size_t
    num_lookup_gates() const
    {
        if (!has_lookup) return 0;
        size_t n = 0;
        for (size_t i = 0; i < q_lookup.size(); ++i) {
            if (!q_lookup[i].is_zero()) ++n;
        }
        return n;
    }

    /** Identity MLE for wire set j: id_j[i] = j * 2^mu + i. */
    Mle identity_mle(size_t j) const;
};

/** The witness: one MLE per wire set (w1, w2, w3). */
struct Witness {
    std::array<Mle, 3> w;

    /** Check Eq. 1 at every gate (debugging / test helper). */
    bool satisfies_gates(const CircuitIndex &index) const;

    /** Check the copy constraints directly (test helper). */
    bool satisfies_wiring(const CircuitIndex &index) const;

    /** Check every active lookup row's triple is in the table (true
     * when the circuit has no lookup argument). */
    bool satisfies_lookups(const CircuitIndex &index) const;

    /** The public-input values (first entries of w1). */
    std::vector<Fr> public_inputs(const CircuitIndex &index) const;
};

/** Variable handle returned by the builder. */
using Var = size_t;

/**
 * Assembles a Plonk circuit gate by gate over named variables and
 * produces the CircuitIndex plus a satisfying Witness.
 */
class CircuitBuilder
{
  public:
    /** Create a fresh variable carrying `value`. */
    Var add_variable(const Fr &value);

    /** Create a public-input variable (exposed to the verifier). */
    Var add_public_input(const Fr &value);

    /** Gate out = a + b. Returns the output variable. */
    Var add_addition(Var a, Var b);

    /** Gate out = a * b. */
    Var add_multiplication(Var a, Var b);

    /** Gate out = a - b. */
    Var add_subtraction(Var a, Var b);

    /** Gate out = a + c for a constant c. */
    Var add_constant_addition(Var a, const Fr &c);

    /** High-degree custom gate out = a^5 (one gate instead of three;
     * enables the Jellyfish-style extension, see CircuitIndex::q_h). */
    Var add_pow5_gate(Var a);

    /** Gate pinning a variable to a constant: a == c. */
    void assert_constant(Var a, const Fr &c);

    /** Gate asserting a == b. */
    void assert_equal(Var a, Var b);

    /** Gate asserting a is boolean: a * a - a == 0. */
    void assert_boolean(Var a);

    /**
     * Fully general gate: qL wa + qR wb + qM wa wb - qO wc + qC must be 0
     * for the provided variables. The caller is responsible for supplying
     * a satisfying assignment.
     */
    void add_custom_gate(const Fr &ql, const Fr &qr, const Fr &qm,
                         const Fr &qo, const Fr &qc, Var a, Var b, Var c);

    /**
     * Register a lookup table and return its 1-based tag. A circuit
     * may register several tables; they are fused into one bank with a
     * tag column, so one LogUp argument proves every one of them. The
     * built circuit's size covers the bank: 2^mu >= max(gates, total
     * rows). Throws lookup::TableSizeError when the fused bank cannot
     * fit under the builder's height bound (set_max_vars).
     */
    size_t add_table(lookup::Table table);

    /**
     * Thin alias over add_table for the common one-table circuit:
     * installs the first (tag-1) table. Must be the first registration.
     */
    void set_table(lookup::Table table);

    /** Raise/lower the 2^max_vars circuit-height bound enforced against
     * the fused table bank (default 20, the wire-format cap). Lowering
     * it below an already-registered bank throws the same structured
     * lookup::TableSizeError add_table would have. */
    void
    set_max_vars(size_t max_vars)
    {
        max_vars_ = max_vars;
        size_t total = 0;
        const lookup::Table *tallest = nullptr;
        for (const auto &t : tables_) {
            total += t.size();
            if (tallest == nullptr || t.size() > tallest->size()) {
                tallest = &t;
            }
        }
        if (tallest != nullptr && total > (size_t(1) << max_vars_)) {
            throw lookup::TableSizeError(tallest->name, tallest->size(),
                                         total, max_vars_);
        }
    }

    /**
     * Lookup gate against the table with tag `tag`: assert the triple
     * (a, b, c) equals some row of that table. All arithmetic selectors
     * stay zero; the row is claimed by the tag-valued q_lookup selector
     * and proved by the fused LogUp argument.
     */
    void add_lookup_gate(size_t tag, Var a, Var b, Var c);

    /** Lookup gate against the first registered table (tag 1). */
    void add_lookup_gate(Var a, Var b, Var c)
    {
        add_lookup_gate(1, a, b, c);
    }

    /** Registered table with tag `tag` (1-based; default the first). */
    const lookup::Table &table(size_t tag = 1) const
    {
        return tables_.at(tag - 1);
    }

    size_t num_tables() const { return tables_.size(); }

    /** Value currently assigned to a variable. */
    const Fr &value(Var v) const { return values_[v]; }

    size_t num_gates() const { return gates_.size(); }

    /**
     * Pad to the next power of two (at least 2^min_vars gates) and emit
     * the index + witness. Public-input gates are placed first.
     */
    std::pair<CircuitIndex, Witness> build(size_t min_vars = 2) const;

  private:
    struct Gate {
        Fr ql, qr, qm, qo, qc;
        Var a, b, c;
        /** Custom-gate selector (kept last so plain-gate aggregate
         * initialisation leaves it zero). */
        Fr qh{};
        /** Lookup gate: 0 = none, k = triple must be in table k. */
        uint32_t lookup_tag = 0;
    };

    /** Default circuit-height bound (matches wire::kMaxRequestVars). */
    static constexpr size_t kDefaultMaxVars = 20;

    Var new_gate_output(const Fr &ql, const Fr &qr, const Fr &qm,
                        const Fr &qc, Var a, Var b, const Fr &out_value);

    std::vector<Fr> values_;
    std::vector<Gate> gates_;
    std::vector<Var> public_inputs_;    ///< variables exposed publicly
    std::vector<lookup::Table> tables_; ///< fused bank, tag = index + 1
    size_t max_vars_ = kDefaultMaxVars;
};

/**
 * Generate a random satisfying circuit with the paper's witness-sparsity
 * statistics (Section 6.2: ~10% dense scalars, ~45% zeros, ~45% ones)
 * used by the mock workloads.
 *
 * @param num_vars mu (2^mu gates).
 * @param dense_fraction fraction of full-width witness values.
 */
std::pair<CircuitIndex, Witness> random_circuit(size_t num_vars,
                                                std::mt19937_64 &rng,
                                                double dense_fraction = 0.1);

}  // namespace zkspeed::hyperplonk
