#include "hyperplonk/permutation.hpp"

#include "ff/batch_inverse.hpp"
#include "hyperplonk/profile.hpp"

namespace zkspeed::hyperplonk {

PermutationOracles
build_permutation_oracles(const CircuitIndex &index, const Witness &witness,
                          const Fr &beta, const Fr &gamma)
{
    const size_t mu = index.num_vars;
    const size_t n = index.num_gates();
    PermutationOracles out;

    // Construct N&D: elementwise affine combinations of witness, identity
    // and permutation MLEs. The id_j term folds into an incrementing
    // constant; each parallel range re-seats it with one multiply at its
    // start (beta * (j*n + begin)), so chunking adds a handful of muls
    // per worker range but every element's value is chunk-independent.
    {
        ProfileRegion reg("Construct N & D");
        for (size_t j = 0; j < 3; ++j) {
            out.n_parts[j] = std::make_shared<Mle>(mu);
            out.d_parts[j] = std::make_shared<Mle>(mu);
            ff::parallel_for(n, [&](size_t begin, size_t end) {
                Fr id_term = beta * Fr::from_uint(j * n + begin) + gamma;
                for (size_t i = begin; i < end; ++i) {
                    (*out.n_parts[j])[i] = witness.w[j][i] + id_term;
                    (*out.d_parts[j])[i] =
                        witness.w[j][i] + beta * index.sigma[j][i] + gamma;
                    id_term += beta;
                }
            });
        }
        reg.add_bytes_in(2 * 3 * n * kFrBytes);   // w_j and sigma_j reads
        reg.add_bytes_out(6 * n * kFrBytes);      // N1..3, D1..3 writes
    }

    // Fraction MLE: phi = (N1 N2 N3) * (D1 D2 D3)^{-1} with batched
    // inversion (software reference of the FracMLE unit, Section 4.4).
    {
        ProfileRegion reg("Fraction MLE");
        out.phi = std::make_shared<Mle>(mu);
        std::vector<Fr> denom(n);
        for (size_t i = 0; i < n; ++i) {
            denom[i] = (*out.d_parts[0])[i] * (*out.d_parts[1])[i] *
                       (*out.d_parts[2])[i];
        }
        ff::batch_inverse(denom);
        for (size_t i = 0; i < n; ++i) {
            (*out.phi)[i] = (*out.n_parts[0])[i] * (*out.n_parts[1])[i] *
                            (*out.n_parts[2])[i] * denom[i];
        }
        reg.add_bytes_out(n * kFrBytes);
    }

    // Product MLE via the merged table v = [phi | pi] (the Multifunction
    // Tree unit's tree mode, Section 4.3). A single forward pass works
    // because v[n+i] only consumes entries with index < n+i.
    {
        ProfileRegion reg("Product MLE");
        std::vector<Fr> v(2 * n);
        for (size_t i = 0; i < n; ++i) v[i] = (*out.phi)[i];
        for (size_t i = 0; i + 1 < n; ++i) {
            v[n + i] = v[2 * i] * v[2 * i + 1];
        }
        v[2 * n - 1] = Fr::one();

        out.pi = std::make_shared<Mle>(mu);
        out.p1 = std::make_shared<Mle>(mu);
        out.p2 = std::make_shared<Mle>(mu);
        for (size_t i = 0; i < n; ++i) {
            (*out.pi)[i] = v[n + i];
            (*out.p1)[i] = v[2 * i];
            (*out.p2)[i] = v[2 * i + 1];
        }
        reg.add_bytes_out(n * kFrBytes);
    }
    return out;
}

Fr
eval_p1_from_children(const Fr &x_last, const Fr &phi_u, const Fr &pi_u)
{
    return (Fr::one() - x_last) * phi_u + x_last * pi_u;
}

}  // namespace zkspeed::hyperplonk
