/**
 * @file
 * Wiring-identity oracles: Construct N&D, Fraction MLE and Product MLE.
 *
 * These are the software kernels behind the zkSpeed Construct N&D unit,
 * FracMLE unit (batched modular inversion) and the Multifunction Tree
 * unit's Product-MLE mode (paper Sections 3.3.3, 4.3, 4.4).
 *
 * Construction (little-endian index convention, see DESIGN.md):
 *   N_j[i] = w_j[i] + beta * id_j[i] + gamma
 *   D_j[i] = w_j[i] + beta * sigma_j[i] + gamma
 *   phi    = (N1 N2 N3) / (D1 D2 D3)          (batched inversion)
 *   v      = [phi | pi] merged table of size 2^{mu+1}
 *   pi[i]  = v[2i] * v[2i+1] for i < 2^mu - 1, pi[2^mu - 1] = 1
 *   p1[i]  = v[2i],  p2[i] = v[2i+1]
 *
 * With this layout the ZeroCheck constraint pi(x) - p1(x) p2(x) = 0
 * enforces tree consistency everywhere and, at the last index, the grand
 * product == 1 (the padding 1 multiplies the tree root).
 */
#pragma once

#include <memory>

#include "hyperplonk/circuit.hpp"

namespace zkspeed::hyperplonk {

/** All MLE oracles produced by the wiring-identity step. */
struct PermutationOracles {
    std::array<std::shared_ptr<Mle>, 3> n_parts;  ///< N1..N3
    std::array<std::shared_ptr<Mle>, 3> d_parts;  ///< D1..D3
    std::shared_ptr<Mle> phi;                     ///< Fraction MLE
    std::shared_ptr<Mle> pi;                      ///< Product MLE
    std::shared_ptr<Mle> p1;                      ///< left children v(0,x)
    std::shared_ptr<Mle> p2;                      ///< right children v(1,x)
};

/** Construct N&D + FracMLE + Product MLE for given challenges. */
PermutationOracles build_permutation_oracles(const CircuitIndex &index,
                                             const Witness &witness,
                                             const Fr &beta,
                                             const Fr &gamma);

/**
 * Evaluate p1 / p2 at an arbitrary point from evaluations of phi and pi
 * at the child points u0 = (0, x_1..x_{mu-1}) and u1 = (1, ...):
 *   p1(x) = (1 - x_mu) phi(u0) + x_mu pi(u0)
 *   p2(x) = (1 - x_mu) phi(u1) + x_mu pi(u1)
 * This is what lets the verifier reduce p1/p2 claims to phi/pi openings
 * (two of the six batch-evaluation points).
 */
Fr eval_p1_from_children(const Fr &x_last, const Fr &phi_u, const Fr &pi_u);

}  // namespace zkspeed::hyperplonk
