#include "hyperplonk/gadgets.hpp"

namespace zkspeed::hyperplonk::gadgets {

namespace {

/** Exponent e = 5^{-1} mod (r - 1), so (x^5)^e == x for all x. */
const ff::BigInt<4> &
inv5_exponent()
{
    static const ff::BigInt<4> kExp = [] {
        using B = ff::BigInt<4>;
        B m = Fr::kModulus;
        m.sub_assign(B(1));  // group order r - 1
        // Find k in 0..4 with (1 + k*m) divisible by 5; e = (1+k*m)/5.
        for (uint64_t k = 0; k < 5; ++k) {
            B acc(1);
            for (uint64_t i = 0; i < k; ++i) acc.add_assign(m);
            B q, rem;
            ff::divmod(acc, B(5), q, rem);
            if (rem.is_zero()) return q;
        }
        return B();  // unreachable for BLS12-381 Fr
    }();
    return kExp;
}

/** MDS-like mixing matrix (structural stand-in; see header). */
constexpr uint64_t kMix[3][3] = {{2, 3, 1}, {1, 2, 3}, {3, 1, 2}};

/** Deterministic round constants. */
Fr
round_constant(unsigned round, unsigned lane, unsigned layer)
{
    uint64_t seed = 0x9e3779b97f4a7c15ULL * (round * 7 + lane * 3 +
                                             layer + 1);
    return Fr::from_uint(seed);
}

Fr
pow5_value(const Fr &x)
{
    Fr x2 = x * x;
    return x2 * x2 * x;
}

Fr
pow5_inverse_value(const Fr &x)
{
    return x.pow(inv5_exponent());
}

}  // namespace

Var
constant(CircuitBuilder &cb, const Fr &c)
{
    Var v = cb.add_variable(c);
    cb.assert_constant(v, c);
    return v;
}

Var
logic_xor(CircuitBuilder &cb, Var a, Var b)
{
    // out = a + b - 2ab.
    Fr va = cb.value(a), vb = cb.value(b);
    Var out = cb.add_variable(va + vb - (va * vb).dbl());
    cb.add_custom_gate(Fr::one(), Fr::one(), -Fr::from_uint(2),
                       Fr::one(), Fr::zero(), a, b, out);
    return out;
}

Var
logic_and(CircuitBuilder &cb, Var a, Var b)
{
    return cb.add_multiplication(a, b);
}

Var
logic_or(CircuitBuilder &cb, Var a, Var b)
{
    // out = a + b - ab.
    Fr va = cb.value(a), vb = cb.value(b);
    Var out = cb.add_variable(va + vb - va * vb);
    cb.add_custom_gate(Fr::one(), Fr::one(), -Fr::one(), Fr::one(),
                       Fr::zero(), a, b, out);
    return out;
}

Var
logic_not(CircuitBuilder &cb, Var a)
{
    // out = 1 - a.
    Var out = cb.add_variable(Fr::one() - cb.value(a));
    cb.add_custom_gate(-Fr::one(), Fr::zero(), Fr::zero(), Fr::one(),
                       Fr::one(), a, a, out);
    return out;
}

Var
mux(CircuitBuilder &cb, Var sel, Var a, Var b)
{
    // out = b + sel * (a - b).
    Var diff = cb.add_subtraction(a, b);
    Var scaled = cb.add_multiplication(sel, diff);
    return cb.add_addition(b, scaled);
}

std::vector<Var>
bit_decompose(CircuitBuilder &cb, Var v, unsigned bits)
{
    // The value must fit; higher bits of the canonical form are checked
    // implicitly by the reconstruction constraint failing otherwise.
    auto repr = cb.value(v).to_repr();
    std::vector<Var> out;
    out.reserve(bits);
    Var acc = constant(cb, Fr::zero());
    for (unsigned i = 0; i < bits; ++i) {
        bool bit = repr.bit(i);
        Var b = cb.add_variable(bit ? Fr::one() : Fr::zero());
        cb.assert_boolean(b);
        out.push_back(b);
        Fr weight = Fr::from_uint(2).pow(uint64_t(i));
        Var next = cb.add_variable(cb.value(acc) + weight * cb.value(b));
        cb.add_custom_gate(Fr::one(), weight, Fr::zero(), Fr::one(),
                           Fr::zero(), acc, b, next);
        acc = next;
    }
    cb.assert_equal(acc, v);
    return out;
}

void
range_check(CircuitBuilder &cb, Var v, unsigned bits)
{
    (void)bit_decompose(cb, v, bits);
}

void
range_via_lookup(CircuitBuilder &cb, Var v, size_t table)
{
    // The lookup constrains the whole triple, so the zero wires need no
    // gates of their own: (v, z1, z2) in {(x, 0, 0)} forces z1 = z2 = 0.
    Var z1 = cb.add_variable(Fr::zero());
    Var z2 = cb.add_variable(Fr::zero());
    cb.add_lookup_gate(table, v, z1, z2);
}

Var
xor_via_lookup(CircuitBuilder &cb, Var a, Var b, size_t table)
{
    uint64_t va = cb.value(a).to_repr().limbs[0];
    uint64_t vb = cb.value(b).to_repr().limbs[0];
    Var out = cb.add_variable(Fr::from_uint(va ^ vb));
    cb.add_lookup_gate(table, a, b, out);
    return out;
}

Var
is_equal(CircuitBuilder &cb, Var a, Var b)
{
    Fr d_val = cb.value(a) - cb.value(b);
    Var d = cb.add_subtraction(a, b);
    // Witness hint: inv = d^{-1} (or 0 when d == 0).
    Var inv = cb.add_variable(d_val.inverse());
    Var t = cb.add_multiplication(d, inv);  // 1 iff d != 0
    Var out = logic_not(cb, t);
    // Soundness: d * out == 0 forces out = 0 whenever d != 0.
    cb.add_custom_gate(Fr::zero(), Fr::zero(), Fr::one(), Fr::zero(),
                       Fr::zero(), d, out, d);
    return out;
}

Var
pow5(CircuitBuilder &cb, Var x)
{
    Var x2 = cb.add_multiplication(x, x);
    Var x4 = cb.add_multiplication(x2, x2);
    return cb.add_multiplication(x4, x);
}

Var
pow5_inverse(CircuitBuilder &cb, Var x)
{
    // Hint y = x^{1/5}; constrain y^5 == x.
    Var y = cb.add_variable(pow5_inverse_value(cb.value(x)));
    Var y2 = cb.add_multiplication(y, y);
    Var y4 = cb.add_multiplication(y2, y2);
    // y4 * y - x == 0.
    cb.add_custom_gate(Fr::zero(), Fr::zero(), Fr::one(), Fr::one(),
                       Fr::zero(), y4, y, x);
    return y;
}

RescueParams
RescueParams::standard()
{
    return RescueParams{};
}

RescueParams
RescueParams::with_custom_gates()
{
    RescueParams p;
    p.use_custom_gates = true;
    return p;
}

namespace {

/** One linear-mix output: out_i = sum_j kMix[i][j] s_j + rc. Shared by
 * the circuit and software paths to keep them in lock step. */
Fr
mix_value(const std::array<Fr, 3> &s, unsigned i, const Fr &rc)
{
    Fr acc = rc;
    for (unsigned j = 0; j < 3; ++j) {
        acc += Fr::from_uint(kMix[i][j]) * s[j];
    }
    return acc;
}

std::array<Var, 3>
mix_circuit(CircuitBuilder &cb, const std::array<Var, 3> &s,
            unsigned round, unsigned layer)
{
    std::array<Var, 3> out;
    for (unsigned i = 0; i < 3; ++i) {
        Fr rc = round_constant(round, i, layer);
        // u = m0*s0 + m1*s1
        Fr m0 = Fr::from_uint(kMix[i][0]);
        Fr m1 = Fr::from_uint(kMix[i][1]);
        Fr m2 = Fr::from_uint(kMix[i][2]);
        Var u = cb.add_variable(m0 * cb.value(s[0]) +
                                m1 * cb.value(s[1]));
        cb.add_custom_gate(m0, m1, Fr::zero(), Fr::one(), Fr::zero(),
                           s[0], s[1], u);
        // out = u + m2*s2 + rc
        Var o = cb.add_variable(cb.value(u) + m2 * cb.value(s[2]) + rc);
        cb.add_custom_gate(Fr::one(), m2, Fr::zero(), Fr::one(), rc, u,
                           s[2], o);
        out[i] = o;
    }
    return out;
}

}  // namespace

std::array<Var, 3>
rescue_permutation(CircuitBuilder &cb, std::array<Var, 3> state,
                   const RescueParams &params)
{
    for (unsigned r = 0; r < params.rounds; ++r) {
        for (auto &lane : state) {
            lane = params.use_custom_gates ? cb.add_pow5_gate(lane)
                                           : pow5(cb, lane);
        }
        state = mix_circuit(cb, state, r, 0);
        for (auto &lane : state) lane = pow5_inverse(cb, lane);
        state = mix_circuit(cb, state, r, 1);
    }
    return state;
}

std::array<Fr, 3>
rescue_permutation_value(std::array<Fr, 3> state,
                         const RescueParams &params)
{
    for (unsigned r = 0; r < params.rounds; ++r) {
        for (auto &lane : state) lane = pow5_value(lane);
        std::array<Fr, 3> mixed;
        for (unsigned i = 0; i < 3; ++i) {
            mixed[i] = mix_value(state, i, round_constant(r, i, 0));
        }
        state = mixed;
        for (auto &lane : state) lane = pow5_inverse_value(lane);
        for (unsigned i = 0; i < 3; ++i) {
            mixed[i] = mix_value(state, i, round_constant(r, i, 1));
        }
        state = mixed;
    }
    return state;
}

Var
rescue_hash2(CircuitBuilder &cb, Var a, Var b,
             const RescueParams &params)
{
    std::array<Var, 3> state = {a, b, constant(cb, Fr::zero())};
    return rescue_permutation(cb, state, params)[0];
}

Fr
rescue_hash2_value(const Fr &a, const Fr &b, const RescueParams &params)
{
    return rescue_permutation_value({a, b, Fr::zero()}, params)[0];
}

}  // namespace zkspeed::hyperplonk::gadgets
