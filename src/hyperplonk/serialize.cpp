#include "hyperplonk/serialize.hpp"

#include "hyperplonk/serde_bytes.hpp"

namespace zkspeed::hyperplonk::serde {

namespace {

using ff::Fq;
using ff::Fr;

// Layout v3 (fused multi-table lookups: tag column joins the bank, the
// lookup claim block grows 10 -> 11 and vks carry 5 lookup
// commitments): new magics so a v2 peer rejects the frame outright
// instead of misparsing it.
constexpr uint64_t kProofMagic = 0x7a6b737065656405ULL;  // "zkspeed",5
constexpr uint64_t kVkMagic = 0x7a6b737065656406ULL;
/** Proof flags byte. */
constexpr uint8_t kFlagCustomGates = 1u << 0;
constexpr uint8_t kFlagLookup = 1u << 1;

void
write_sumcheck(ByteWriter &w, const SumcheckProof &sc)
{
    w.u64(sc.num_vars);
    w.u64(sc.degree);
    w.u64(sc.round_evals.size());
    for (const auto &r : sc.round_evals) w.frs(r);
}

SumcheckProof
read_sumcheck(ByteReader &r)
{
    SumcheckProof sc;
    sc.num_vars = r.u64();
    sc.degree = r.u64();
    uint64_t rounds = r.u64();
    if (sc.num_vars > kMaxVars || sc.degree > kMaxDegree ||
        rounds > kMaxVars) {
        return sc;  // reader flagged below via size mismatch
    }
    for (uint64_t i = 0; i < rounds; ++i) {
        sc.round_evals.push_back(r.frs(kMaxDegree + 1));
    }
    return sc;
}

}  // namespace

std::vector<uint8_t>
serialize_proof(const Proof &proof)
{
    ByteWriter w;
    w.u64(kProofMagic);
    uint8_t flags = 0;
    if (proof.evals.custom) flags |= kFlagCustomGates;
    if (proof.evals.lookup) flags |= kFlagLookup;
    w.u8(flags);
    for (const auto &c : proof.witness_comms) w.g1(c);
    if (proof.evals.lookup) w.g1(proof.m_comm);
    write_sumcheck(w, proof.zerocheck);
    w.g1(proof.phi_comm);
    w.g1(proof.pi_comm);
    write_sumcheck(w, proof.permcheck);
    if (proof.evals.lookup) {
        w.g1(proof.hf_comm);
        w.g1(proof.ht_comm);
        write_sumcheck(w, proof.lookupcheck);
    }
    auto flat = proof.evals.flatten();
    w.frs(flat);
    write_sumcheck(w, proof.opencheck);
    w.fr(proof.gprime_value);
    w.u64(proof.gprime_proof.quotients.size());
    for (const auto &q : proof.gprime_proof.quotients) w.g1(q);
    return std::move(w.buf);
}

std::optional<Proof>
deserialize_proof(std::span<const uint8_t> bytes)
{
    ByteReader r(bytes);
    if (r.u64() != kProofMagic) return std::nullopt;
    uint8_t flags = r.u8();
    if ((flags & ~(kFlagCustomGates | kFlagLookup)) != 0) {
        return std::nullopt;
    }
    Proof p;
    p.evals.custom = (flags & kFlagCustomGates) != 0;
    p.evals.lookup = (flags & kFlagLookup) != 0;
    for (auto &c : p.witness_comms) c = r.g1();
    if (p.evals.lookup) p.m_comm = r.g1();
    p.zerocheck = read_sumcheck(r);
    p.phi_comm = r.g1();
    p.pi_comm = r.g1();
    p.permcheck = read_sumcheck(r);
    if (p.evals.lookup) {
        p.hf_comm = r.g1();
        p.ht_comm = r.g1();
        p.lookupcheck = read_sumcheck(r);
    }
    const size_t expected_evals = p.evals.count();
    auto flat = r.frs(expected_evals);
    if (flat.size() != expected_evals) return std::nullopt;
    size_t off = 8;
    for (size_t i = 0; i < 8; ++i) p.evals.at_gate[i] = flat[i];
    if (p.evals.custom) p.evals.qh_at_gate = flat[off++];
    for (size_t i = 0; i < 8; ++i) p.evals.at_perm[i] = flat[off + i];
    off += 8;
    p.evals.at_u0 = {flat[off], flat[off + 1]};
    p.evals.at_u1 = {flat[off + 2], flat[off + 3]};
    p.evals.pi_at_root = flat[off + 4];
    p.evals.w1_at_pub = flat[off + 5];
    off += 6;
    if (p.evals.lookup) {
        for (size_t i = 0; i < BatchEvaluations::kLookupCount; ++i) {
            p.evals.at_lookup[i] = flat[off + i];
        }
    }
    p.opencheck = read_sumcheck(r);
    p.gprime_value = r.fr();
    uint64_t nq = r.u64();
    if (nq > kMaxVars) return std::nullopt;
    for (uint64_t i = 0; i < nq && !r.failed(); ++i) {
        p.gprime_proof.quotients.push_back(r.g1());
    }
    if (!r.fully_consumed()) return std::nullopt;
    return p;
}

std::vector<uint8_t>
serialize_verifying_key(const VerifyingKey &vk)
{
    ByteWriter w;
    w.u64(kVkMagic);
    w.u64(vk.num_vars);
    w.u64(vk.num_public);
    w.u8(vk.custom_gates ? 1 : 0);
    w.u8(vk.has_lookup ? 1 : 0);
    for (const auto &c : vk.selector_comms) w.g1(c);
    for (const auto &c : vk.sigma_comms) w.g1(c);
    if (vk.has_lookup) {
        for (const auto &c : vk.lookup_comms) w.g1(c);
    }
    // Verifier SRS subset: g, h and h^{tau_i} (G2 points as 4 Fq each).
    w.g1(vk.srs->g);
    auto write_g2 = [&](const curve::G2Affine &p) {
        w.u8(p.infinity ? 1 : 0);
        w.fq(p.x.c0);
        w.fq(p.x.c1);
        w.fq(p.y.c0);
        w.fq(p.y.c1);
    };
    write_g2(vk.srs->h);
    w.u64(vk.srs->tau_h.size());
    for (const auto &p : vk.srs->tau_h) write_g2(p);
    return std::move(w.buf);
}

std::optional<VerifyingKey>
deserialize_verifying_key(std::span<const uint8_t> bytes)
{
    ByteReader r(bytes);
    if (r.u64() != kVkMagic) return std::nullopt;
    VerifyingKey vk;
    vk.num_vars = r.u64();
    vk.num_public = r.u64();
    uint8_t custom = r.u8();
    uint8_t has_lookup = r.u8();
    if (custom > 1 || has_lookup > 1) return std::nullopt;
    vk.custom_gates = custom == 1;
    vk.has_lookup = has_lookup == 1;
    if (vk.num_vars > kMaxVars ||
        vk.num_public > (uint64_t(1) << std::min<uint64_t>(vk.num_vars,
                                                           30))) {
        return std::nullopt;
    }
    for (auto &c : vk.selector_comms) c = r.g1();
    for (auto &c : vk.sigma_comms) c = r.g1();
    if (vk.has_lookup) {
        for (auto &c : vk.lookup_comms) c = r.g1();
    }
    auto srs = std::make_shared<pcs::Srs>();
    srs->num_vars = vk.num_vars;
    srs->g = r.g1();
    auto read_g2 = [&]() {
        // Sequence the reads explicitly: function-argument evaluation
        // order is unspecified in C++.
        uint8_t inf = r.u8();
        Fq xc0 = r.field<Fq>();
        Fq xc1 = r.field<Fq>();
        Fq yc0 = r.field<Fq>();
        Fq yc1 = r.field<Fq>();
        if (inf == 1) return curve::G2Affine::identity();
        return curve::G2Affine(curve::Fq2(xc0, xc1),
                               curve::Fq2(yc0, yc1));
    };
    srs->h = read_g2();
    if (!r.failed() && !srs->h.is_on_curve()) return std::nullopt;
    uint64_t nt = r.u64();
    if (nt != vk.num_vars) return std::nullopt;
    for (uint64_t i = 0; i < nt && !r.failed(); ++i) {
        auto p = read_g2();
        if (!p.is_on_curve()) return std::nullopt;
        srs->tau_h.push_back(p);
    }
    if (!r.fully_consumed()) return std::nullopt;
    vk.srs = std::move(srs);
    return vk;
}

}  // namespace zkspeed::hyperplonk::serde
