#include "hyperplonk/serialize.hpp"

#include <cstring>

namespace zkspeed::hyperplonk::serde {

namespace {

using curve::G1Affine;
using ff::Fq;
using ff::Fr;

class ByteWriter
{
  public:
    std::vector<uint8_t> buf;

    void
    u8(uint8_t v)
    {
        buf.push_back(v);
    }

    void
    u64(uint64_t v)
    {
        for (int i = 0; i < 8; ++i) buf.push_back(uint8_t(v >> (8 * i)));
    }

    void
    fr(const Fr &x)
    {
        size_t off = buf.size();
        buf.resize(off + Fr::kByteSize);
        x.to_bytes(buf.data() + off);
    }

    void
    fq(const Fq &x)
    {
        size_t off = buf.size();
        buf.resize(off + Fq::kByteSize);
        x.to_bytes(buf.data() + off);
    }

    void
    g1(const G1Affine &p)
    {
        u8(p.infinity ? 1 : 0);
        fq(p.infinity ? Fq::zero() : p.x);
        fq(p.infinity ? Fq::zero() : p.y);
    }

    void
    frs(std::span<const Fr> xs)
    {
        u64(xs.size());
        for (const auto &x : xs) fr(x);
    }
};

class ByteReader
{
  public:
    explicit ByteReader(std::span<const uint8_t> bytes) : data_(bytes) {}

    bool failed() const { return failed_; }
    bool fully_consumed() const { return !failed_ && pos_ == data_.size(); }

    uint8_t
    u8()
    {
        if (pos_ + 1 > data_.size()) {
            failed_ = true;
            return 0;
        }
        return data_[pos_++];
    }

    uint64_t
    u64()
    {
        if (pos_ + 8 > data_.size()) {
            failed_ = true;
            return 0;
        }
        uint64_t v = 0;
        for (int i = 0; i < 8; ++i) {
            v |= uint64_t(data_[pos_ + i]) << (8 * i);
        }
        pos_ += 8;
        return v;
    }

    /** Strict field decode: value must be canonical (< modulus). */
    template <typename F>
    F
    field()
    {
        if (pos_ + F::kByteSize > data_.size()) {
            failed_ = true;
            return F::zero();
        }
        typename F::Repr r;
        for (size_t i = 0; i < F::kLimbs; ++i) {
            uint64_t limb = 0;
            for (size_t b = 0; b < 8; ++b) {
                limb |= uint64_t(data_[pos_ + i * 8 + b]) << (8 * b);
            }
            r.limbs[i] = limb;
        }
        pos_ += F::kByteSize;
        if (!(r < F::kModulus)) {
            failed_ = true;
            return F::zero();
        }
        return F::from_repr(r);
    }

    Fr fr() { return field<Fr>(); }

    /** Strict point decode: must be on the curve. */
    G1Affine
    g1()
    {
        uint8_t inf = u8();
        Fq x = field<Fq>();
        Fq y = field<Fq>();
        if (failed_) return G1Affine::identity();
        if (inf == 1) {
            if (!x.is_zero() || !y.is_zero()) failed_ = true;
            return G1Affine::identity();
        }
        if (inf != 0) {
            failed_ = true;
            return G1Affine::identity();
        }
        G1Affine p(x, y);
        if (!p.is_on_curve()) {
            failed_ = true;
            return G1Affine::identity();
        }
        return p;
    }

    std::vector<Fr>
    frs(uint64_t max_len)
    {
        uint64_t n = u64();
        if (n > max_len) {
            failed_ = true;
            return {};
        }
        std::vector<Fr> out;
        out.reserve(n);
        for (uint64_t i = 0; i < n && !failed_; ++i) out.push_back(fr());
        return out;
    }

  private:
    std::span<const uint8_t> data_;
    size_t pos_ = 0;
    bool failed_ = false;
};

constexpr uint64_t kProofMagic = 0x7a6b737065656401ULL;  // "zkspeed",1
constexpr uint64_t kVkMagic = 0x7a6b737065656402ULL;
/** Upper bound on accepted round counts / degrees (DoS hygiene). */
constexpr uint64_t kMaxVars = 40;
constexpr uint64_t kMaxDegree = 16;

void
write_sumcheck(ByteWriter &w, const SumcheckProof &sc)
{
    w.u64(sc.num_vars);
    w.u64(sc.degree);
    w.u64(sc.round_evals.size());
    for (const auto &r : sc.round_evals) w.frs(r);
}

SumcheckProof
read_sumcheck(ByteReader &r)
{
    SumcheckProof sc;
    sc.num_vars = r.u64();
    sc.degree = r.u64();
    uint64_t rounds = r.u64();
    if (sc.num_vars > kMaxVars || sc.degree > kMaxDegree ||
        rounds > kMaxVars) {
        return sc;  // reader flagged below via size mismatch
    }
    for (uint64_t i = 0; i < rounds; ++i) {
        sc.round_evals.push_back(r.frs(kMaxDegree + 1));
    }
    return sc;
}

}  // namespace

std::vector<uint8_t>
serialize_proof(const Proof &proof)
{
    ByteWriter w;
    w.u64(kProofMagic);
    for (const auto &c : proof.witness_comms) w.g1(c);
    write_sumcheck(w, proof.zerocheck);
    w.g1(proof.phi_comm);
    w.g1(proof.pi_comm);
    write_sumcheck(w, proof.permcheck);
    auto flat = proof.evals.flatten();
    w.frs(flat);
    write_sumcheck(w, proof.opencheck);
    w.fr(proof.gprime_value);
    w.u64(proof.gprime_proof.quotients.size());
    for (const auto &q : proof.gprime_proof.quotients) w.g1(q);
    return std::move(w.buf);
}

std::optional<Proof>
deserialize_proof(std::span<const uint8_t> bytes)
{
    ByteReader r(bytes);
    if (r.u64() != kProofMagic) return std::nullopt;
    Proof p;
    for (auto &c : p.witness_comms) c = r.g1();
    p.zerocheck = read_sumcheck(r);
    p.phi_comm = r.g1();
    p.pi_comm = r.g1();
    p.permcheck = read_sumcheck(r);
    auto flat = r.frs(BatchEvaluations::kBaseCount + 1);
    if (flat.size() != BatchEvaluations::kBaseCount &&
        flat.size() != BatchEvaluations::kBaseCount + 1) {
        return std::nullopt;
    }
    p.evals.custom = flat.size() == BatchEvaluations::kBaseCount + 1;
    size_t off = 8;
    for (size_t i = 0; i < 8; ++i) p.evals.at_gate[i] = flat[i];
    if (p.evals.custom) p.evals.qh_at_gate = flat[off++];
    for (size_t i = 0; i < 8; ++i) p.evals.at_perm[i] = flat[off + i];
    off += 8;
    p.evals.at_u0 = {flat[off], flat[off + 1]};
    p.evals.at_u1 = {flat[off + 2], flat[off + 3]};
    p.evals.pi_at_root = flat[off + 4];
    p.evals.w1_at_pub = flat[off + 5];
    p.opencheck = read_sumcheck(r);
    p.gprime_value = r.fr();
    uint64_t nq = r.u64();
    if (nq > kMaxVars) return std::nullopt;
    for (uint64_t i = 0; i < nq && !r.failed(); ++i) {
        p.gprime_proof.quotients.push_back(r.g1());
    }
    if (!r.fully_consumed()) return std::nullopt;
    return p;
}

std::vector<uint8_t>
serialize_verifying_key(const VerifyingKey &vk)
{
    ByteWriter w;
    w.u64(kVkMagic);
    w.u64(vk.num_vars);
    w.u64(vk.num_public);
    w.u8(vk.custom_gates ? 1 : 0);
    for (const auto &c : vk.selector_comms) w.g1(c);
    for (const auto &c : vk.sigma_comms) w.g1(c);
    // Verifier SRS subset: g, h and h^{tau_i} (G2 points as 4 Fq each).
    w.g1(vk.srs->g);
    auto write_g2 = [&](const curve::G2Affine &p) {
        w.u8(p.infinity ? 1 : 0);
        w.fq(p.x.c0);
        w.fq(p.x.c1);
        w.fq(p.y.c0);
        w.fq(p.y.c1);
    };
    write_g2(vk.srs->h);
    w.u64(vk.srs->tau_h.size());
    for (const auto &p : vk.srs->tau_h) write_g2(p);
    return std::move(w.buf);
}

std::optional<VerifyingKey>
deserialize_verifying_key(std::span<const uint8_t> bytes)
{
    ByteReader r(bytes);
    if (r.u64() != kVkMagic) return std::nullopt;
    VerifyingKey vk;
    vk.num_vars = r.u64();
    vk.num_public = r.u64();
    uint8_t custom = r.u8();
    if (custom > 1) return std::nullopt;
    vk.custom_gates = custom == 1;
    if (vk.num_vars > kMaxVars ||
        vk.num_public > (uint64_t(1) << std::min<uint64_t>(vk.num_vars,
                                                           30))) {
        return std::nullopt;
    }
    for (auto &c : vk.selector_comms) c = r.g1();
    for (auto &c : vk.sigma_comms) c = r.g1();
    auto srs = std::make_shared<pcs::Srs>();
    srs->num_vars = vk.num_vars;
    srs->g = r.g1();
    auto read_g2 = [&]() {
        // Sequence the reads explicitly: function-argument evaluation
        // order is unspecified in C++.
        uint8_t inf = r.u8();
        Fq xc0 = r.field<Fq>();
        Fq xc1 = r.field<Fq>();
        Fq yc0 = r.field<Fq>();
        Fq yc1 = r.field<Fq>();
        if (inf == 1) return curve::G2Affine::identity();
        return curve::G2Affine(curve::Fq2(xc0, xc1),
                               curve::Fq2(yc0, yc1));
    };
    srs->h = read_g2();
    if (!r.failed() && !srs->h.is_on_curve()) return std::nullopt;
    uint64_t nt = r.u64();
    if (nt != vk.num_vars) return std::nullopt;
    for (uint64_t i = 0; i < nt && !r.failed(); ++i) {
        auto p = read_g2();
        if (!p.is_on_curve()) return std::nullopt;
        srs->tau_h.push_back(p);
    }
    if (!r.fully_consumed()) return std::nullopt;
    vk.srs = std::move(srs);
    return vk;
}

}  // namespace zkspeed::hyperplonk::serde
