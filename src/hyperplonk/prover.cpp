#include "hyperplonk/prover.hpp"

#include <cassert>

#include "hyperplonk/permutation.hpp"
#include "hyperplonk/profile.hpp"
#include "hyperplonk/protocol_common.hpp"
#include "lookup/logup.hpp"

namespace zkspeed::hyperplonk {

using namespace detail;

std::vector<Fr>
BatchEvaluations::flatten() const
{
    std::vector<Fr> out;
    out.reserve(count());
    out.insert(out.end(), at_gate.begin(), at_gate.end());
    out.insert(out.end(), at_perm.begin(), at_perm.end());
    out.insert(out.end(), at_u0.begin(), at_u0.end());
    out.insert(out.end(), at_u1.begin(), at_u1.end());
    out.push_back(pi_at_root);
    out.push_back(w1_at_pub);
    // The custom-gate claim slots in right after the base gate block.
    if (custom) out.insert(out.begin() + 8, qh_at_gate);
    // The LookupCheck-point claims trail the base list.
    if (lookup) out.insert(out.end(), at_lookup.begin(), at_lookup.end());
    return out;
}

size_t
Proof::size_bytes() const
{
    constexpr size_t kG1Size = 2 * ff::Fq::kByteSize + 1;
    constexpr size_t kFrSize = ff::Fr::kByteSize;
    size_t n = 0;
    n += witness_comms.size() * kG1Size;
    n += 2 * kG1Size;  // phi, pi
    for (const auto *sc : {&zerocheck, &permcheck, &opencheck}) {
        for (const auto &r : sc->round_evals) n += r.size() * kFrSize;
    }
    n += evals.count() * kFrSize;
    n += kFrSize;  // gprime_value
    n += gprime_proof.quotients.size() * kG1Size;
    if (evals.lookup) {
        n += 3 * kG1Size;  // m, h_f, h_t
        for (const auto &r : lookupcheck.round_evals) {
            n += r.size() * kFrSize;
        }
    }
    return n;
}

std::pair<ProvingKey, VerifyingKey>
keygen(CircuitIndex index, std::shared_ptr<const pcs::Srs> srs)
{
    assert(srs->num_vars == index.num_vars);
    ProvingKey pk;
    VerifyingKey vk;
    vk.num_vars = index.num_vars;
    vk.num_public = index.num_public;
    vk.custom_gates = index.custom_gates;
    vk.has_lookup = index.has_lookup;
    const Mle *selectors[6] = {&index.q_l, &index.q_r, &index.q_m,
                               &index.q_o, &index.q_c, &index.q_h};
    for (size_t i = 0; i < 6; ++i) {
        pk.selector_comms[i] = pcs::commit_sparse(*srs, *selectors[i]);
    }
    for (size_t j = 0; j < 3; ++j) {
        pk.sigma_comms[j] = pcs::commit(*srs, index.sigma[j]);
    }
    if (index.has_lookup) {
        pk.lookup_comms[0] = pcs::commit_sparse(*srs, index.q_lookup);
        pk.lookup_comms[1] = pcs::commit_sparse(*srs, index.table_tag);
        for (size_t k = 0; k < 3; ++k) {
            pk.lookup_comms[2 + k] = pcs::commit(*srs, index.table[k]);
        }
    }
    vk.selector_comms = pk.selector_comms;
    vk.sigma_comms = pk.sigma_comms;
    vk.lookup_comms = pk.lookup_comms;
    vk.srs = srs;
    pk.srs = std::move(srs);
    pk.index = std::move(index);
    return {std::move(pk), std::move(vk)};
}

namespace {

/** Non-owning shared_ptr alias for MLEs whose lifetime outlives prove(). */
std::shared_ptr<Mle>
alias(const Mle &m)
{
    return std::shared_ptr<Mle>(std::shared_ptr<Mle>(),
                                const_cast<Mle *>(&m));
}

/** Record a sumcheck's two kernels under their Table-1 row names. */
void
record_sumcheck(const std::string &round_name, const SumcheckCosts &costs,
                double seconds)
{
    uint64_t total = costs.round_modmuls + costs.update_modmuls;
    double round_share =
        total == 0 ? 0.5 : double(costs.round_modmuls) / double(total);
    Profiler::instance().record(round_name, costs.round_modmuls,
                                costs.round_bytes_in, 0,
                                seconds * round_share);
    Profiler::instance().record("All MLE Updates", costs.update_modmuls,
                                costs.update_bytes_in,
                                costs.update_bytes_out,
                                seconds * (1.0 - round_share));
}

/** Timed sumcheck wrapper feeding the profiler (and a trace span —
 * the per-round/update metric split keeps its Table-1 row names while
 * the span shows the whole sumcheck as one prover phase). */
SumcheckProverResult
profiled_sumcheck(const std::string &name, const VirtualPolynomial &vp,
                  hash::Transcript &tr)
{
    obs::Span span(name, "prover");
    ff::ModmulScope scope;
    SumcheckCosts costs;
    auto t0 = std::chrono::steady_clock::now();
    auto res = sumcheck_prove(vp, tr, &costs);
    double secs = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - t0)
                      .count();
    record_sumcheck(name, costs, secs);
    // Mirror ProfileRegion's span attributes so obs/attrib joins
    // sumcheck spans the same way (rounds + MLE updates together,
    // matching the modeled sumcheck kernel's scope).
    span.arg("modmul_fr", double(scope.fr_delta()));
    span.arg("modmul_fq", double(scope.fq_delta()));
    span.arg("bytes_in", double(costs.round_bytes_in +
                                costs.update_bytes_in));
    span.arg("bytes_out", double(costs.update_bytes_out));
    return res;
}

}  // namespace

Proof
prove(const ProvingKey &pk, const Witness &witness)
{
    const CircuitIndex &index = pk.index;
    const pcs::Srs &srs = *pk.srs;
    const size_t mu = index.num_vars;
    const size_t n = index.num_gates();
    assert(witness.w[0].num_vars() == mu);

    Proof proof;
    hash::Transcript tr("hyperplonk-v1");
    std::vector<Fr> publics = witness.public_inputs(index);
    bind_preamble(tr, mu, index.num_public, index.custom_gates,
                  index.has_lookup, pk.selector_comms, pk.sigma_comms,
                  pk.lookup_comms, publics);

    // ------------------------------------------------------------------
    // Step 1: Witness Commits (sparse MSMs; paper Section 3.3.1).
    // ------------------------------------------------------------------
    {
        ProfileRegion reg("Witness MSMs");
        for (size_t j = 0; j < 3; ++j) {
            curve::MsmStats st;
            proof.witness_comms[j] =
                pcs::commit_sparse(srs, witness.w[j], &st);
            // Points for 1-valued and dense scalars are fetched; dense
            // scalars travel too (Section 4.2.1: two coordinates/point).
            reg.add_bytes_in((st.ones + st.dense) * kG1Bytes +
                             st.dense * kFrBytes);
        }
    }
    for (const auto &c : proof.witness_comms) {
        append_g1(tr, "witness_comm", c);
    }
    // Lookup multiplicities depend only on (witness, table), so m is
    // committed alongside the witness — before any challenge is drawn.
    const std::array<const Mle *, 3> wire_ptrs = {
        &witness.w[0], &witness.w[1], &witness.w[2]};
    std::shared_ptr<Mle> m_mle;
    if (index.has_lookup) {
        ProfileRegion reg("Witness MSMs");
        m_mle = std::make_shared<Mle>(lookup::multiplicities(
            index.q_lookup, index.table_tag, index.table,
            index.table_rows, wire_ptrs));
        curve::MsmStats st;
        proof.m_comm = pcs::commit_sparse(srs, *m_mle, &st);
        reg.add_bytes_in((st.ones + st.dense) * kG1Bytes +
                         st.dense * kFrBytes);
        append_g1(tr, "lookup_m_comm", proof.m_comm);
    }

    // ------------------------------------------------------------------
    // Step 2: Gate Identity — ZeroCheck on Eq. 3.
    // ------------------------------------------------------------------
    std::vector<Fr> r_z = tr.challenge_frs("zerocheck_r", mu);
    std::shared_ptr<Mle> fz1;
    {
        ProfileRegion reg("Build MLE");
        fz1 = std::make_shared<Mle>(Mle::eq_table(r_z));
        reg.add_bytes_out(n * kFrBytes);
    }
    VirtualPolynomial f_zero(mu);
    {
        size_t ql = f_zero.add_mle(alias(index.q_l));
        size_t qr = f_zero.add_mle(alias(index.q_r));
        size_t qm = f_zero.add_mle(alias(index.q_m));
        size_t qo = f_zero.add_mle(alias(index.q_o));
        size_t qc = f_zero.add_mle(alias(index.q_c));
        size_t w1 = f_zero.add_mle(alias(witness.w[0]));
        size_t w2 = f_zero.add_mle(alias(witness.w[1]));
        size_t w3 = f_zero.add_mle(alias(witness.w[2]));
        size_t eq = f_zero.add_mle(fz1);
        f_zero.add_term(Fr::one(), {ql, w1, eq});
        f_zero.add_term(Fr::one(), {qr, w2, eq});
        f_zero.add_term(Fr::one(), {qm, w1, w2, eq});
        f_zero.add_term(-Fr::one(), {qo, w3, eq});
        f_zero.add_term(Fr::one(), {qc, eq});
        if (index.custom_gates) {
            // Jellyfish-style high-degree gate: q_H w1^5 (degree 7).
            size_t qh = f_zero.add_mle(alias(index.q_h));
            f_zero.add_term(Fr::one(), {qh, w1, w1, w1, w1, w1, eq});
        }
    }
    auto zres = profiled_sumcheck("ZeroCheck Rounds", f_zero, tr);
    proof.zerocheck = std::move(zres.proof);
    std::span<const Fr> r_g = zres.challenges;

    // ------------------------------------------------------------------
    // Step 3: Wiring Identity — Construct N&D, FracMLE, ProdMLE, MSMs,
    // then the PermCheck ZeroCheck on Eq. 4.
    // ------------------------------------------------------------------
    Fr beta = tr.challenge_fr("beta");
    Fr gamma = tr.challenge_fr("gamma");
    PermutationOracles oracles =
        build_permutation_oracles(index, witness, beta, gamma);
    {
        ProfileRegion reg("Wire Identity MSMs");
        proof.phi_comm = pcs::commit(srs, *oracles.phi);
        proof.pi_comm = pcs::commit(srs, *oracles.pi);
        reg.add_bytes_in(2 * n * (kG1Bytes + kFrBytes));
    }
    append_g1(tr, "phi_comm", proof.phi_comm);
    append_g1(tr, "pi_comm", proof.pi_comm);
    Fr alpha = tr.challenge_fr("alpha");
    std::vector<Fr> r_z2 = tr.challenge_frs("permcheck_r", mu);
    std::shared_ptr<Mle> fz2;
    {
        ProfileRegion reg("Build MLE");
        fz2 = std::make_shared<Mle>(Mle::eq_table(r_z2));
        reg.add_bytes_out(n * kFrBytes);
    }
    VirtualPolynomial f_perm(mu);
    {
        size_t pi = f_perm.add_mle(oracles.pi);
        size_t p1 = f_perm.add_mle(oracles.p1);
        size_t p2 = f_perm.add_mle(oracles.p2);
        size_t phi = f_perm.add_mle(oracles.phi);
        size_t d1 = f_perm.add_mle(oracles.d_parts[0]);
        size_t d2 = f_perm.add_mle(oracles.d_parts[1]);
        size_t d3 = f_perm.add_mle(oracles.d_parts[2]);
        size_t n1 = f_perm.add_mle(oracles.n_parts[0]);
        size_t n2 = f_perm.add_mle(oracles.n_parts[1]);
        size_t n3 = f_perm.add_mle(oracles.n_parts[2]);
        size_t eq = f_perm.add_mle(fz2);
        f_perm.add_term(Fr::one(), {pi, eq});
        f_perm.add_term(-Fr::one(), {p1, p2, eq});
        f_perm.add_term(alpha, {phi, d1, d2, d3, eq});
        f_perm.add_term(-alpha, {n1, n2, n3, eq});
    }
    auto pres = profiled_sumcheck("PermCheck Rounds", f_perm, tr);
    proof.permcheck = std::move(pres.proof);
    std::span<const Fr> r_p = pres.challenges;

    // ------------------------------------------------------------------
    // Step 3.5: Lookup Argument (lookup circuits only) — LogUp helper
    // construction (two batched inversions, the FracMLE kernel again)
    // and the combined degree-3 LookupCheck (src/lookup/logup.hpp).
    // ------------------------------------------------------------------
    lookup::LookupOracles lk;
    std::span<const Fr> r_l;
    SumcheckProverResult lres;
    if (index.has_lookup) {
        Fr lambda = tr.challenge_fr("lookup_lambda");
        Fr gamma_l = tr.challenge_fr("lookup_gamma");
        {
            ProfileRegion reg("Fraction MLE");
            lk = lookup::build_helper_oracles(index.q_lookup,
                                              index.table_tag, index.table,
                                              wire_ptrs, *m_mle, lambda,
                                              gamma_l);
            reg.add_bytes_in(9 * n * kFrBytes);  // wires, bank, q, m
            reg.add_bytes_out(2 * n * kFrBytes);
        }
        {
            ProfileRegion reg("Wire Identity MSMs");
            proof.hf_comm = pcs::commit(srs, *lk.h_f);
            proof.ht_comm = pcs::commit(srs, *lk.h_t);
            reg.add_bytes_in(2 * n * (kG1Bytes + kFrBytes));
        }
        append_g1(tr, "lookup_hf_comm", proof.hf_comm);
        append_g1(tr, "lookup_ht_comm", proof.ht_comm);
        Fr alpha_l = tr.challenge_fr("lookup_alpha");
        std::vector<Fr> r_z3 = tr.challenge_frs("lookupcheck_r", mu);
        std::shared_ptr<Mle> fz3;
        {
            ProfileRegion reg("Build MLE");
            fz3 = std::make_shared<Mle>(Mle::eq_table(r_z3));
            reg.add_bytes_out(n * kFrBytes);
        }
        VirtualPolynomial f_lookup(mu);
        {
            size_t hf = f_lookup.add_mle(lk.h_f);
            size_t ht = f_lookup.add_mle(lk.h_t);
            size_t w1 = f_lookup.add_mle(alias(witness.w[0]));
            size_t w2 = f_lookup.add_mle(alias(witness.w[1]));
            size_t w3 = f_lookup.add_mle(alias(witness.w[2]));
            size_t ql = f_lookup.add_mle(alias(index.q_lookup));
            size_t tg = f_lookup.add_mle(alias(index.table_tag));
            size_t t1 = f_lookup.add_mle(alias(index.table[0]));
            size_t t2 = f_lookup.add_mle(alias(index.table[1]));
            size_t t3 = f_lookup.add_mle(alias(index.table[2]));
            size_t m = f_lookup.add_mle(m_mle);
            size_t eq = f_lookup.add_mle(fz3);
            Fr a2 = alpha_l * alpha_l;
            Fr g2 = gamma_l * gamma_l;
            Fr g3 = g2 * gamma_l;
            // (L1): sum h_f - h_t == 0.
            f_lookup.add_term(Fr::one(), {hf});
            f_lookup.add_term(-Fr::one(), {ht});
            // (L2): h_f (lambda + ql + g w1 + g^2 w2 + g^3 w3) - ql == 0
            // (the gate-side tag is the q_lookup value itself).
            f_lookup.add_term(alpha_l * lambda, {hf, eq});
            f_lookup.add_term(alpha_l, {hf, ql, eq});
            f_lookup.add_term(alpha_l * gamma_l, {hf, w1, eq});
            f_lookup.add_term(alpha_l * g2, {hf, w2, eq});
            f_lookup.add_term(alpha_l * g3, {hf, w3, eq});
            f_lookup.add_term(-alpha_l, {ql, eq});
            // (L3): h_t (lambda + tag + g t1 + g^2 t2 + g^3 t3) - m == 0.
            f_lookup.add_term(a2 * lambda, {ht, eq});
            f_lookup.add_term(a2, {ht, tg, eq});
            f_lookup.add_term(a2 * gamma_l, {ht, t1, eq});
            f_lookup.add_term(a2 * g2, {ht, t2, eq});
            f_lookup.add_term(a2 * g3, {ht, t3, eq});
            f_lookup.add_term(-a2, {m, eq});
        }
        lres = profiled_sumcheck("LookupCheck Rounds", f_lookup, tr);
        proof.lookupcheck = std::move(lres.proof);
        r_l = lres.challenges;
    }

    // ------------------------------------------------------------------
    // Step 4: Batch Evaluations — 22 evaluations at 6 points (+11 at
    // the LookupCheck point for lookup circuits).
    // ------------------------------------------------------------------
    std::vector<Fr> z_pub =
        tr.challenge_frs("pub_r", pub_vars(index.num_public));
    auto points = make_points(r_g, r_p, z_pub, mu, r_l);
    const Mle *polys[kNumPolys] = {
        &index.q_l, &index.q_r, &index.q_m, &index.q_o, &index.q_c,
        &index.q_h,
        &witness.w[0], &witness.w[1], &witness.w[2],
        &index.sigma[0], &index.sigma[1], &index.sigma[2],
        oracles.phi.get(), oracles.pi.get(),
        &index.q_lookup, &index.table_tag, &index.table[0],
        &index.table[1], &index.table[2],
        m_mle.get(), lk.h_f.get(), lk.h_t.get()};
    {
        ProfileRegion reg("Batch Evaluations");
        auto ev = [&](size_t poly, size_t point) {
            reg.add_bytes_in(n * kFrBytes);
            return polys[poly]->evaluate(points[point]);
        };
        for (size_t i = 0; i < 5; ++i) proof.evals.at_gate[i] = ev(i, 0);
        for (size_t i = 0; i < 3; ++i) {
            proof.evals.at_gate[5 + i] = ev(kW1 + i, 0);
            proof.evals.at_perm[i] = ev(kW1 + i, 1);
            proof.evals.at_perm[3 + i] = ev(kS1 + i, 1);
        }
        proof.evals.at_perm[6] = ev(kPhi, 1);
        proof.evals.at_perm[7] = ev(kPi, 1);
        proof.evals.at_u0 = {ev(kPhi, 2), ev(kPi, 2)};
        proof.evals.at_u1 = {ev(kPhi, 3), ev(kPi, 3)};
        // The root point is boolean: the evaluation is a table lookup.
        proof.evals.pi_at_root = (*oracles.pi)[n - 2];
        proof.evals.w1_at_pub = ev(kW1, 5);
        proof.evals.custom = index.custom_gates;
        if (index.custom_gates) proof.evals.qh_at_gate = ev(kQh, 0);
        proof.evals.lookup = index.has_lookup;
        if (index.has_lookup) {
            const size_t lk_polys[BatchEvaluations::kLookupCount] = {
                kW1, kW2, kW3, kQLookup, kTTag,
                kT1, kT2, kT3, kM, kHf, kHt};
            for (size_t i = 0; i < BatchEvaluations::kLookupCount; ++i) {
                proof.evals.at_lookup[i] = ev(lk_polys[i], 6);
            }
        }
    }
    tr.append_frs("batch_evals", proof.evals.flatten());

    // ------------------------------------------------------------------
    // Step 5: Polynomial Opening — MLE Combine, Build MLE (k_j),
    // OpenCheck (Eq. 5), g' and the halving MSM opening.
    // ------------------------------------------------------------------
    Fr a = tr.challenge_fr("batch_a");
    auto claims = claim_list(index.custom_gates, index.has_lookup);
    std::vector<Fr> pw = powers(a, claims.size());

    // k_j = eq(X, z_j): six Build MLEs.
    std::vector<std::shared_ptr<Mle>> k_mles(points.size());
    {
        ProfileRegion reg("Build MLE");
        for (size_t j = 0; j < points.size(); ++j) {
            k_mles[j] = std::make_shared<Mle>(Mle::eq_table(points[j]));
            reg.add_bytes_out(n * kFrBytes);
        }
    }
    // y_j = sum of a^c-weighted polynomials claimed at point j.
    std::vector<std::shared_ptr<Mle>> y_mles(points.size());
    {
        ProfileRegion reg("Linear Combine");
        for (size_t j = 0; j < points.size(); ++j) {
            y_mles[j] = std::make_shared<Mle>(mu);
        }
        for (size_t c = 0; c < claims.size(); ++c) {
            y_mles[claims[c].point]->add_scaled(*polys[claims[c].poly],
                                                pw[c]);
            reg.add_bytes_in(n * kFrBytes);
        }
        reg.add_bytes_out(points.size() * n * kFrBytes);
    }
    VirtualPolynomial f_open(mu);
    for (size_t j = 0; j < points.size(); ++j) {
        f_open.add_product(Fr::one(), {y_mles[j], k_mles[j]});
    }
    auto ores = profiled_sumcheck("OpenCheck Rounds", f_open, tr);
    proof.opencheck = std::move(ores.proof);
    std::span<const Fr> r_o = ores.challenges;

    // g' = sum_j eq(r_o, z_j) * y_j, then open at r_o.
    Mle gprime(mu);
    {
        ProfileRegion reg("Linear Combine");
        for (size_t j = 0; j < points.size(); ++j) {
            gprime.add_scaled(*y_mles[j], Mle::eq_eval(r_o, points[j]));
            reg.add_bytes_in(n * kFrBytes);
        }
        reg.add_bytes_out(n * kFrBytes);
    }
    {
        ProfileRegion reg("Poly Open MSMs");
        auto [open_proof, value] = pcs::open(srs, gprime, r_o);
        proof.gprime_proof = std::move(open_proof);
        proof.gprime_value = value;
        reg.add_bytes_in(n * (kG1Bytes + kFrBytes));
    }
    tr.append_fr("gprime_value", proof.gprime_value);
    for (const auto &q : proof.gprime_proof.quotients) {
        append_g1(tr, "gprime_quotient", q);
    }
    return proof;
}

}  // namespace zkspeed::hyperplonk
