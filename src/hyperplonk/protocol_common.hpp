/**
 * @file
 * Shared prover/verifier protocol plumbing: transcript binding, the
 * batch-evaluation claim table, and the six opening points.
 *
 * Keeping these in one header guarantees the prover and verifier agree on
 * transcript ordering and on the canonical (point, polynomial) claim list
 * that drives the batch opening (22 claims over 13 polynomials at 6
 * points; +1 claim with custom gates, +11 claims / +8 polynomials / +1
 * point with a lookup argument; see DESIGN.md Sections 2 and 8).
 */
#pragma once

#include <vector>

#include "hash/transcript.hpp"
#include "hyperplonk/prover.hpp"

namespace zkspeed::hyperplonk::detail {

using hash::Transcript;

/** Absorb an affine G1 point (canonical coordinates + infinity flag). */
inline void
append_g1(Transcript &tr, std::string_view label, const G1Affine &p)
{
    uint8_t buf[2 * ff::Fq::kByteSize + 1] = {};
    if (!p.infinity) {
        p.x.to_bytes(buf);
        p.y.to_bytes(buf + ff::Fq::kByteSize);
        buf[2 * ff::Fq::kByteSize] = 1;
    }
    tr.append_bytes(label, std::span<const uint8_t>(buf, sizeof(buf)));
}

/** Bind the statement: index commitments, sizes and public inputs. */
inline void
bind_preamble(Transcript &tr, size_t num_vars, size_t num_public,
              bool custom_gates, bool has_lookup,
              const std::array<G1Affine, 6> &selector_comms,
              const std::array<G1Affine, 3> &sigma_comms,
              const std::array<G1Affine, 5> &lookup_comms,
              std::span<const Fr> public_inputs)
{
    tr.append_fr("num_vars", Fr::from_uint(num_vars));
    tr.append_fr("num_public", Fr::from_uint(num_public));
    tr.append_fr("custom_gates", Fr::from_uint(custom_gates ? 1 : 0));
    tr.append_fr("has_lookup", Fr::from_uint(has_lookup ? 1 : 0));
    for (const auto &c : selector_comms) append_g1(tr, "selector_comm", c);
    for (const auto &c : sigma_comms) append_g1(tr, "sigma_comm", c);
    for (const auto &c : lookup_comms) append_g1(tr, "lookup_comm", c);
    tr.append_frs("public_inputs", public_inputs);
}

/** One batch-opening claim: polynomial `poly` evaluated at point `point`. */
struct ClaimEntry {
    size_t point;  ///< index into the 6-point list
    size_t poly;   ///< PolyId
};

/**
 * The canonical claim list; order matches BatchEvaluations::flatten().
 * With custom gates enabled a 23rd claim (q_H at the gate point) is
 * inserted after the base gate block; with a lookup argument the 11
 * LookupCheck-point claims are appended at the end (point index 6).
 */
inline std::vector<ClaimEntry>
claim_list(bool custom_gates, bool has_lookup)
{
    std::vector<ClaimEntry> c = {
        {0, kQl}, {0, kQr}, {0, kQm}, {0, kQo}, {0, kQc},
        {0, kW1}, {0, kW2}, {0, kW3},
    };
    if (custom_gates) c.push_back({0, kQh});
    const ClaimEntry rest[] = {
        {1, kW1}, {1, kW2}, {1, kW3}, {1, kS1}, {1, kS2}, {1, kS3},
        {1, kPhi}, {1, kPi},
        {2, kPhi}, {2, kPi},
        {3, kPhi}, {3, kPi},
        {4, kPi},
        {5, kW1},
    };
    c.insert(c.end(), std::begin(rest), std::end(rest));
    if (has_lookup) {
        const ClaimEntry lk[] = {
            {6, kW1}, {6, kW2}, {6, kW3}, {6, kQLookup},
            {6, kTTag}, {6, kT1}, {6, kT2}, {6, kT3},
            {6, kM}, {6, kHf}, {6, kHt},
        };
        c.insert(c.end(), std::begin(lk), std::end(lk));
    }
    return c;
}

/** Number of variables needed to index the public inputs. */
inline size_t
pub_vars(size_t num_public)
{
    size_t v = 0;
    while ((size_t(1) << v) < num_public) ++v;
    return v;
}

/** Child point u0/u1 = (bit, r_p[0..mu-2]) for the p1/p2 reduction. */
inline std::vector<Fr>
child_point(std::span<const Fr> r_p, bool one)
{
    std::vector<Fr> pt(r_p.size());
    pt[0] = one ? Fr::one() : Fr::zero();
    for (size_t k = 1; k < r_p.size(); ++k) pt[k] = r_p[k - 1];
    return pt;
}

/** The compile-time-fixed product-tree root point: bits of 2^mu - 2. */
inline std::vector<Fr>
root_point(size_t mu)
{
    size_t idx = (size_t(1) << mu) - 2;
    std::vector<Fr> pt(mu);
    for (size_t k = 0; k < mu; ++k) {
        pt[k] = ((idx >> k) & 1) ? Fr::one() : Fr::zero();
    }
    return pt;
}

/** The public-input point (z_pub padded with zeros to mu coordinates). */
inline std::vector<Fr>
pub_point(std::span<const Fr> z_pub, size_t mu)
{
    std::vector<Fr> pt(mu, Fr::zero());
    for (size_t k = 0; k < z_pub.size(); ++k) pt[k] = z_pub[k];
    return pt;
}

/** Assemble the opening points in canonical order: the six base points
 * plus, for lookup circuits, the LookupCheck point r_l (index 6). */
inline std::vector<std::vector<Fr>>
make_points(std::span<const Fr> r_g, std::span<const Fr> r_p,
            std::span<const Fr> z_pub, size_t mu,
            std::span<const Fr> r_l = {})
{
    std::vector<std::vector<Fr>> pts = {
        std::vector<Fr>(r_g.begin(), r_g.end()),
        std::vector<Fr>(r_p.begin(), r_p.end()),
        child_point(r_p, false),
        child_point(r_p, true),
        root_point(mu),
        pub_point(z_pub, mu),
    };
    if (!r_l.empty()) pts.emplace_back(r_l.begin(), r_l.end());
    return pts;
}

/** Powers a^0 .. a^{n-1}. */
inline std::vector<Fr>
powers(const Fr &a, size_t n)
{
    std::vector<Fr> p(n);
    p[0] = Fr::one();
    for (size_t i = 1; i < n; ++i) p[i] = p[i - 1] * a;
    return p;
}

/** The gate-identity constraint (Eq. 1, plus the optional q_H w1^5
 * custom-gate term) from the claimed gate-point evaluations. */
inline Fr
gate_expression(const BatchEvaluations &ev)
{
    const auto &e = ev.at_gate;
    // qL w1 + qR w2 + qM w1 w2 - qO w3 + qC
    Fr f = e[0] * e[5] + e[1] * e[6] + e[2] * e[5] * e[6] -
           e[3] * e[7] + e[4];
    if (ev.custom) {
        Fr w1sq = e[5] * e[5];
        f += ev.qh_at_gate * w1sq * w1sq * e[5];
    }
    return f;
}

/** id_j evaluated at an arbitrary point: j*2^mu + sum_k x_k 2^{k-1}. */
inline Fr
identity_eval(size_t j, size_t mu, std::span<const Fr> x)
{
    Fr acc = Fr::from_uint(uint64_t(j) << mu);
    for (size_t k = 0; k < mu; ++k) {
        acc += x[k] * Fr::from_uint(uint64_t(1) << k);
    }
    return acc;
}

/** Per-round degree bound of the LookupCheck sumcheck (h * wire * eq). */
constexpr size_t kLookupCheckDegree = 3;

/** Indices into BatchEvaluations::at_lookup (claim_list point-6 order). */
enum LookupEvalId : size_t {
    kLkW1 = 0, kLkW2, kLkW3, kLkQLookup,
    kLkTTag, kLkT1, kLkT2, kLkT3,
    kLkM, kLkHf, kLkHt,
};

/**
 * The combined LookupCheck constraint evaluated from the claimed
 * point-6 evaluations (logup.hpp: (L1) + alpha (L2) eq + alpha^2 (L3)
 * eq), with the tagged folds tag + gamma c1 + gamma^2 c2 + gamma^3 c3
 * (gate-side tag = the q_lookup value itself). `eq_val` is
 * eq(r_l, r_z3), computed by the caller.
 */
inline Fr
lookup_expression(const std::array<Fr, 11> &e, const Fr &lambda,
                  const Fr &gamma, const Fr &alpha, const Fr &eq_val)
{
    Fr f = lambda + e[kLkQLookup] +
           gamma * (e[kLkW1] + gamma * (e[kLkW2] + gamma * e[kLkW3]));
    Fr t = lambda + e[kLkTTag] +
           gamma * (e[kLkT1] + gamma * (e[kLkT2] + gamma * e[kLkT3]));
    Fr expr = e[kLkHf] - e[kLkHt];
    expr += alpha * (e[kLkHf] * f - e[kLkQLookup]) * eq_val;
    expr += alpha * alpha * (e[kLkHt] * t - e[kLkM]) * eq_val;
    return expr;
}

}  // namespace zkspeed::hyperplonk::detail
