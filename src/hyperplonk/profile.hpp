/**
 * @file
 * Per-kernel profiling of the prover (modmuls, bytes moved, wall time).
 *
 * The Table-1 benchmark reproduces the paper's kernel characterisation
 * (modmuls, input/output MB, arithmetic intensity) by wrapping each
 * prover step in a ProfileRegion. Counting is pull-based: regions read
 * the global modmul counters on entry/exit; byte counts are declared by
 * the instrumented code since they describe logical data movement
 * (table reads/writes), not allocator traffic.
 *
 * Kernel profiles fold into the process-wide obs::MetricsRegistry as
 *   zkspeed_prover_kernel_modmuls_total{kernel=...}   (counter)
 *   zkspeed_prover_kernel_bytes_total{direction,kernel} (counter)
 *   zkspeed_prover_kernel_seconds{kernel=...}         (histogram,
 *       count = calls, sum = total seconds)
 * so they ride the same per-thread shards as the service metrics:
 * record() resolves its handles through a thread-local cache and never
 * takes a global lock in steady state — concurrent provers no longer
 * serialise on every prover-step exit (the old design was one global
 * mutex plus a std::map<std::string,...> lookup per call). Regions also
 * emit trace spans, nesting under the service's prove span in the
 * Perfetto export.
 */
#pragma once

#include <chrono>
#include <map>
#include <string>
#include <unordered_map>

#include "ff/counters.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace zkspeed::hyperplonk {

/** Accumulated statistics for one named kernel. */
struct KernelProfile {
    uint64_t modmuls = 0;
    uint64_t bytes_in = 0;
    uint64_t bytes_out = 0;
    uint64_t calls = 0;
    double seconds = 0.0;

    double
    arithmetic_intensity() const
    {
        uint64_t bytes = bytes_in + bytes_out;
        return bytes == 0 ? 0.0 : double(modmuls) / double(bytes);
    }
};

/**
 * Process-wide kernel profile facade over obs::MetricsRegistry::global().
 * The class survives as an API shim: record() is the sharded hot path,
 * kernels() reconstructs the Table-1 view from a registry snapshot.
 */
class Profiler
{
  public:
    static Profiler &
    instance()
    {
        static Profiler p;
        return p;
    }

    /**
     * Zero every series in the global registry (kernel profiles have no
     * private storage to clear in isolation). Bench/test setup only.
     */
    void
    reset()
    {
        obs::MetricsRegistry::global().reset();
    }

    void
    record(const std::string &name, uint64_t modmuls, uint64_t bytes_in,
           uint64_t bytes_out, double seconds)
    {
        if (!obs::enabled()) return;
        const Handles &h = handles(name);
        auto &reg = obs::MetricsRegistry::global();
        reg.add(h.modmuls, modmuls);
        reg.add(h.bytes_in, bytes_in);
        reg.add(h.bytes_out, bytes_out);
        reg.observe(h.seconds, seconds);
    }

    /** Snapshot of the kernel profiles (concurrent provers keep
     * recording; reconstructed from the shared registry). */
    std::map<std::string, KernelProfile>
    kernels() const
    {
        std::map<std::string, KernelProfile> out;
        auto label = [](const obs::MetricSnapshot &m,
                        const char *key) -> const std::string * {
            for (const auto &[k, v] : m.labels) {
                if (k == key) return &v;
            }
            return nullptr;
        };
        auto snap = obs::MetricsRegistry::global().snapshot();
        for (const auto &m : snap.metrics) {
            const std::string *kernel = label(m, "kernel");
            if (kernel == nullptr) continue;
            if (m.name == "zkspeed_prover_kernel_modmuls_total") {
                out[*kernel].modmuls = m.counter;
            } else if (m.name == "zkspeed_prover_kernel_bytes_total") {
                const std::string *dir = label(m, "direction");
                if (dir == nullptr) continue;
                if (*dir == "in") out[*kernel].bytes_in = m.counter;
                else out[*kernel].bytes_out = m.counter;
            } else if (m.name == "zkspeed_prover_kernel_seconds") {
                out[*kernel].calls = m.hist.count;
                out[*kernel].seconds = m.hist.sum;
            }
        }
        // Drop all-zero rows a reset() leaves behind.
        for (auto it = out.begin(); it != out.end();) {
            if (it->second.calls == 0) it = out.erase(it);
            else ++it;
        }
        return out;
    }

  private:
    struct Handles {
        obs::MetricId modmuls, bytes_in, bytes_out, seconds;
    };

    /** Thread-local name -> handles cache; a miss registers the series
     * once (the only lock this path ever takes, once per thread). */
    static const Handles &
    handles(const std::string &name)
    {
        thread_local std::unordered_map<std::string, Handles> cache;
        auto it = cache.find(name);
        if (it != cache.end()) return it->second;
        auto &reg = obs::MetricsRegistry::global();
        Handles h;
        h.modmuls = reg.counter(
            "zkspeed_prover_kernel_modmuls_total", {{"kernel", name}},
            "Modular multiplications per prover kernel (Table 1)");
        h.bytes_in = reg.counter(
            "zkspeed_prover_kernel_bytes_total",
            {{"kernel", name}, {"direction", "in"}},
            "Logical bytes moved per prover kernel (Table 1)");
        h.bytes_out = reg.counter(
            "zkspeed_prover_kernel_bytes_total",
            {{"kernel", name}, {"direction", "out"}},
            "Logical bytes moved per prover kernel (Table 1)");
        h.seconds = reg.histogram(
            "zkspeed_prover_kernel_seconds", {{"kernel", name}},
            "Wall seconds per prover-kernel invocation");
        return cache.emplace(name, h).first->second;
    }
};

/**
 * RAII region: captures modmul deltas and wall time; the instrumented
 * code declares logical bytes moved via add_bytes_*(). Each region is
 * also a trace span (category "prover").
 */
class ProfileRegion
{
  public:
    explicit ProfileRegion(std::string name)
        : name_(std::move(name)),
          start_(std::chrono::steady_clock::now())
    {}

    void add_bytes_in(uint64_t b) { bytes_in_ += b; }
    void add_bytes_out(uint64_t b) { bytes_out_ += b; }

    ~ProfileRegion()
    {
        auto end = std::chrono::steady_clock::now();
        double secs =
            std::chrono::duration<double>(end - start_).count();
        uint64_t fr = scope_.fr_delta();
        uint64_t fq = scope_.fq_delta();
        Profiler::instance().record(name_, fr + fq, bytes_in_,
                                    bytes_out_, secs);
        // Per-span counter deltas ride as numeric span attributes:
        // rendered into Chrome-trace `args` for Perfetto, and joined
        // per kernel per job by obs/attrib.
        obs::Span::record_complete(
            std::move(name_), "prover", start_, end, 0, 0,
            {{"modmul_fr", double(fr)},
             {"modmul_fq", double(fq)},
             {"bytes_in", double(bytes_in_)},
             {"bytes_out", double(bytes_out_)}});
    }

    ProfileRegion(const ProfileRegion &) = delete;
    ProfileRegion &operator=(const ProfileRegion &) = delete;

  private:
    std::string name_;
    ff::ModmulScope scope_;
    uint64_t bytes_in_ = 0;
    uint64_t bytes_out_ = 0;
    std::chrono::steady_clock::time_point start_;
};

/** Canonical byte size of one Fr table entry (the paper counts 32 B). */
constexpr uint64_t kFrBytes = 32;
/** Byte size of an affine G1 point fetched as (X, Y) (paper Sec. 4.2.1). */
constexpr uint64_t kG1Bytes = 96;

}  // namespace zkspeed::hyperplonk
