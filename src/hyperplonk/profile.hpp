/**
 * @file
 * Per-kernel profiling of the prover (modmuls, bytes moved, wall time).
 *
 * The Table-1 benchmark reproduces the paper's kernel characterisation
 * (modmuls, input/output MB, arithmetic intensity) by wrapping each
 * prover step in a ProfileRegion. Counting is pull-based: regions read
 * the global modmul counters on entry/exit; byte counts are declared by
 * the instrumented code since they describe logical data movement
 * (table reads/writes), not allocator traffic.
 */
#pragma once

#include <chrono>
#include <map>
#include <mutex>
#include <string>

#include "ff/counters.hpp"

namespace zkspeed::hyperplonk {

/** Accumulated statistics for one named kernel. */
struct KernelProfile {
    uint64_t modmuls = 0;
    uint64_t bytes_in = 0;
    uint64_t bytes_out = 0;
    uint64_t calls = 0;
    double seconds = 0.0;

    double
    arithmetic_intensity() const
    {
        uint64_t bytes = bytes_in + bytes_out;
        return bytes == 0 ? 0.0 : double(modmuls) / double(bytes);
    }
};

/** Process-wide kernel profile registry. */
class Profiler
{
  public:
    static Profiler &
    instance()
    {
        static Profiler p;
        return p;
    }

    void
    reset()
    {
        std::lock_guard<std::mutex> lock(mu_);
        kernels_.clear();
    }

    void
    record(const std::string &name, uint64_t modmuls, uint64_t bytes_in,
           uint64_t bytes_out, double seconds)
    {
        std::lock_guard<std::mutex> lock(mu_);
        auto &k = kernels_[name];
        k.modmuls += modmuls;
        k.bytes_in += bytes_in;
        k.bytes_out += bytes_out;
        k.seconds += seconds;
        ++k.calls;
    }

    /** Snapshot of the registry (concurrent provers keep recording). */
    std::map<std::string, KernelProfile>
    kernels() const
    {
        std::lock_guard<std::mutex> lock(mu_);
        return kernels_;
    }

  private:
    mutable std::mutex mu_;
    std::map<std::string, KernelProfile> kernels_;
};

/**
 * RAII region: captures modmul deltas and wall time; the instrumented
 * code declares logical bytes moved via add_bytes_*().
 */
class ProfileRegion
{
  public:
    explicit ProfileRegion(std::string name)
        : name_(std::move(name)),
          start_(std::chrono::steady_clock::now())
    {}

    void add_bytes_in(uint64_t b) { bytes_in_ += b; }
    void add_bytes_out(uint64_t b) { bytes_out_ += b; }

    ~ProfileRegion()
    {
        double secs = std::chrono::duration<double>(
                          std::chrono::steady_clock::now() - start_)
                          .count();
        Profiler::instance().record(name_, scope_.total_delta(), bytes_in_,
                                    bytes_out_, secs);
    }

    ProfileRegion(const ProfileRegion &) = delete;
    ProfileRegion &operator=(const ProfileRegion &) = delete;

  private:
    std::string name_;
    ff::ModmulScope scope_;
    uint64_t bytes_in_ = 0;
    uint64_t bytes_out_ = 0;
    std::chrono::steady_clock::time_point start_;
};

/** Canonical byte size of one Fr table entry (the paper counts 32 B). */
constexpr uint64_t kFrBytes = 32;
/** Byte size of an affine G1 point fetched as (X, Y) (paper Sec. 4.2.1). */
constexpr uint64_t kG1Bytes = 96;

}  // namespace zkspeed::hyperplonk
