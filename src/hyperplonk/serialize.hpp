/**
 * @file
 * Canonical byte serialization for proofs and verifying keys.
 *
 * Proofs are the wire objects of the system (posted on chain, sent to
 * verifiers), so encoding is strict: fixed-width little-endian field
 * elements validated against the modulus, and curve points validated
 * for curve membership on decode. Malformed or truncated inputs decode
 * to std::nullopt, never to a partially-initialised object.
 *
 * The verifying-key encoding embeds the verifier-relevant subset of the
 * SRS (generators and h^{tau_i}); the prover-side Lagrange tables are
 * intentionally not serialized (regenerate or distribute separately).
 */
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "hyperplonk/prover.hpp"

namespace zkspeed::hyperplonk::serde {

/** Encode a proof to bytes. */
std::vector<uint8_t> serialize_proof(const Proof &proof);

/** Decode and validate a proof. @return nullopt on any malformation. */
std::optional<Proof> deserialize_proof(std::span<const uint8_t> bytes);

/** Encode a verifying key (including the verifier SRS subset). */
std::vector<uint8_t> serialize_verifying_key(const VerifyingKey &vk);

/**
 * Decode a verifying key. The reconstructed SRS carries no Lagrange
 * tables and no trapdoor, so it supports PcsCheckMode::pairing
 * verification only.
 */
std::optional<VerifyingKey> deserialize_verifying_key(
    std::span<const uint8_t> bytes);

}  // namespace zkspeed::hyperplonk::serde
