/**
 * @file
 * The HyperPlonk prover and verifier (paper Section 3.3).
 *
 * Proof generation runs the five protocol steps in series, with SHA3
 * transcript updates enforcing the order (Section 3.3.6):
 *   1. Witness Commits        — sparse MSMs over w1..w3
 *   2. Gate Identity          — Build MLE + ZeroCheck on Eq. 3
 *   3. Wiring Identity        — Construct N&D, FracMLE, ProdMLE, two
 *                               dense MSMs, ZeroCheck on Eq. 4 (PermCheck)
 *   4. Batch Evaluations      — 22 evaluations of 13 polynomials at 6
 *                               (23/14 with custom gates) points
 *                               (see DESIGN.md for the breakdown)
 *   5. Polynomial Opening     — MLE Combine, Build MLE (k_j), OpenCheck
 *                               on Eq. 5, g' construction and the halving
 *                               MSM opening
 */
#pragma once

#include <memory>

#include "hyperplonk/circuit.hpp"
#include "hyperplonk/sumcheck.hpp"
#include "pcs/mkzg.hpp"

namespace zkspeed::hyperplonk {

using curve::G1Affine;

/** Canonical polynomial ordering used throughout the batch opening. */
enum PolyId : size_t {
    kQl = 0, kQr, kQm, kQo, kQc, kQh,  // 0..5 (q_H: custom gates)
    kW1, kW2, kW3,                     // 6..8
    kS1, kS2, kS3,                     // 9..11
    kPhi, kPi,                         // 12..13
    kQLookup, kTTag, kT1, kT2, kT3,    // 14..18 (lookup: preprocessed)
    kM, kHf, kHt,                      // 19..21 (lookup: proof-carried)
    kNumPolys,
};

struct ProvingKey {
    CircuitIndex index;
    std::shared_ptr<const pcs::Srs> srs;
    std::array<G1Affine, 6> selector_comms;  ///< qL,qR,qM,qO,qC,qH
    std::array<G1Affine, 3> sigma_comms;
    /** q_lookup, tag, t1, t2, t3 (identity when has_lookup is false). */
    std::array<G1Affine, 5> lookup_comms{};
};

struct VerifyingKey {
    size_t num_vars = 0;
    size_t num_public = 0;
    /** Whether the circuit uses q_H custom gates (degree-7 ZeroCheck,
     * 23 batch claims instead of 22). */
    bool custom_gates = false;
    /** Whether the circuit carries a lookup argument (LookupCheck
     * sumcheck, 3 extra commitments, 11 extra batch claims). */
    bool has_lookup = false;
    std::array<G1Affine, 6> selector_comms;  ///< qL,qR,qM,qO,qC,qH
    std::array<G1Affine, 3> sigma_comms;
    /** q_lookup, tag, t1, t2, t3 (identity when has_lookup is false). */
    std::array<G1Affine, 5> lookup_comms{};
    std::shared_ptr<const pcs::Srs> srs;
};

/**
 * The 22 claimed evaluations of Step 4, grouped by point:
 *   z1 = gate-identity point r_g, z2 = wiring point r_p,
 *   z3/z4 = the p1/p2 child points u0/u1, z5 = the product-tree root
 *   (compile-time fixed), z6 = the public-input point.
 */
struct BatchEvaluations {
    std::array<Fr, 8> at_gate;  ///< qL,qR,qM,qO,qC,w1,w2,w3 at r_g
    std::array<Fr, 8> at_perm;  ///< w1,w2,w3,s1,s2,s3,phi,pi at r_p
    std::array<Fr, 2> at_u0;    ///< phi,pi at u0
    std::array<Fr, 2> at_u1;    ///< phi,pi at u1
    Fr pi_at_root;              ///< pi at the tree-root index (must be 1)
    Fr w1_at_pub;               ///< w1 at the public-input point
    /** q_H at the gate point (custom-gate circuits only). */
    Fr qh_at_gate;
    bool custom = false;
    /** w1,w2,w3,q_lookup,tag,t1,t2,t3,m,h_f,h_t at the LookupCheck
     * point r_l (lookup circuits only; order matches claim_list). */
    std::array<Fr, 11> at_lookup;
    bool lookup = false;

    /** All values in canonical order: 22 base, +1 custom, +11 lookup. */
    std::vector<Fr> flatten() const;
    size_t
    count() const
    {
        return kBaseCount + (custom ? 1 : 0) + (lookup ? kLookupCount : 0);
    }
    static constexpr size_t kBaseCount = 22;
    static constexpr size_t kLookupCount = 11;
};

struct Proof {
    std::array<G1Affine, 3> witness_comms;
    SumcheckProof zerocheck;
    G1Affine phi_comm, pi_comm;
    SumcheckProof permcheck;
    BatchEvaluations evals;
    SumcheckProof opencheck;
    Fr gprime_value;
    pcs::OpeningProof gprime_proof;

    /** Lookup argument (evals.lookup circuits only): multiplicity and
     * helper commitments plus the degree-3 LookupCheck transcript. */
    G1Affine m_comm, hf_comm, ht_comm;
    SumcheckProof lookupcheck;

    /** Approximate wire size in bytes (for Table-4-style reporting). */
    size_t size_bytes() const;
};

/** Commit to the preprocessed index, splitting pk/vk. */
std::pair<ProvingKey, VerifyingKey> keygen(
    CircuitIndex index, std::shared_ptr<const pcs::Srs> srs);

/** Generate a HyperPlonk proof. Profiled via hyperplonk/profile.hpp. */
Proof prove(const ProvingKey &pk, const Witness &witness);

/** How the final PCS opening is checked. */
enum class PcsCheckMode {
    ideal,    ///< trapdoor check in G1 (test-mode SRS required; fast)
    pairing,  ///< real optimal-ate pairing product check
};

/** Verify a proof against the public inputs. */
bool verify(const VerifyingKey &vk, std::span<const Fr> public_inputs,
            const Proof &proof, PcsCheckMode mode = PcsCheckMode::ideal);

/**
 * Deferred verification for batching: run every algebraic check
 * (transcript, sumchecks, claimed-evaluation consistency, public
 * inputs) inline, but push the final PCS pairing check into `acc`
 * instead of evaluating it.
 *
 * @return false when an algebraic check fails (nothing is accumulated
 *   in that case); true means the proof is valid iff the accumulator's
 *   eventual flush accepts. See verifier::BatchVerifier for the folded
 *   multi-proof flush.
 */
bool verify_deferred(const VerifyingKey &vk,
                     std::span<const Fr> public_inputs, const Proof &proof,
                     zkspeed::verifier::PairingAccumulator &acc);

}  // namespace zkspeed::hyperplonk
