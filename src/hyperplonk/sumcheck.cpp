#include "hyperplonk/sumcheck.hpp"

#include <mutex>

#include "ff/batch_inverse.hpp"
#include "ff/parallel.hpp"

namespace zkspeed::hyperplonk {

Fr
interpolate_univariate(std::span<const Fr> evals, const Fr &x)
{
    const size_t d = evals.size() - 1;
    // Numerators: prod_{j != k} (x - j) via prefix/suffix products.
    std::vector<Fr> xm(d + 1), pre(d + 2), suf(d + 2);
    for (size_t j = 0; j <= d; ++j) xm[j] = x - Fr::from_uint(j);
    pre[0] = Fr::one();
    for (size_t j = 0; j <= d; ++j) pre[j + 1] = pre[j] * xm[j];
    suf[d + 1] = Fr::one();
    for (size_t j = d + 1; j-- > 0;) suf[j] = suf[j + 1] * xm[j];
    // Denominators: k! * (d-k)! * (-1)^{d-k}.
    std::vector<Fr> fact(d + 1);
    fact[0] = Fr::one();
    for (size_t j = 1; j <= d; ++j) fact[j] = fact[j - 1] * Fr::from_uint(j);
    std::vector<Fr> denom(d + 1);
    for (size_t k = 0; k <= d; ++k) {
        denom[k] = fact[k] * fact[d - k];
        if ((d - k) % 2 == 1) denom[k] = -denom[k];
    }
    ff::batch_inverse(denom);
    Fr acc = Fr::zero();
    for (size_t k = 0; k <= d; ++k) {
        acc += evals[k] * pre[k] * suf[k + 1] * denom[k];
    }
    return acc;
}

SumcheckProverResult
sumcheck_prove(const VirtualPolynomial &vp, Transcript &transcript,
               SumcheckCosts *costs)
{
    const size_t nv = vp.num_vars();
    const size_t d = std::max<size_t>(vp.max_degree(), 1);
    const size_t num_mles = vp.mles().size();

    // Working copies of the tables; the originals stay intact. The
    // scratch vectors are the fold destinations, swapped with the live
    // tables every round (allocated once, shrink-resized thereafter).
    std::vector<std::vector<Fr>> tables(num_mles);
    std::vector<std::vector<Fr>> scratch(num_mles);
    for (size_t m = 0; m < num_mles; ++m) tables[m] = vp.mles()[m]->evals();

    SumcheckProverResult out;
    out.proof.num_vars = nv;
    out.proof.degree = d;
    out.proof.round_evals.reserve(nv);
    out.challenges.reserve(nv);

    size_t len = size_t(1) << nv;
    for (size_t round = 0; round < nv; ++round) {
        const size_t pairs = len / 2;
        std::vector<Fr> acc(d + 1, Fr::zero());
        std::mutex acc_mutex;
        ff::ModmulScope round_scope;
        // Hypercube pairs are independent (the zkSpeed SumCheck PEs
        // exploit the same parallelism); field addition is exact, so
        // the merge order cannot change the result.
        ff::parallel_for(pairs, [&](size_t begin, size_t end) {
            std::vector<std::vector<Fr>> ext(num_mles,
                                             std::vector<Fr>(d + 1));
            std::vector<Fr> local(d + 1, Fr::zero());
            for (size_t i = begin; i < end; ++i) {
                // Extend every distinct MLE once (X = 2..d are mul-free
                // increments from the pair difference).
                for (size_t m = 0; m < num_mles; ++m) {
                    const Fr &e0 = tables[m][2 * i];
                    const Fr &e1 = tables[m][2 * i + 1];
                    Fr diff = e1 - e0;
                    ext[m][0] = e0;
                    for (size_t k = 1; k <= d; ++k) {
                        ext[m][k] = ext[m][k - 1] + diff;
                    }
                }
                // Per-term products at each evaluation point.
                for (const auto &t : vp.terms()) {
                    for (size_t k = 0; k <= d; ++k) {
                        Fr prod = t.coeff;
                        for (size_t f : t.factors) prod *= ext[f][k];
                        local[k] += prod;
                    }
                }
            }
            std::lock_guard<std::mutex> lock(acc_mutex);
            for (size_t k = 0; k <= d; ++k) acc[k] += local[k];
        });
        if (costs != nullptr) {
            costs->round_modmuls += round_scope.total_delta();
            costs->round_bytes_in += num_mles * len * 32;
        }
        transcript.append_frs("sumcheck_round", acc);
        Fr r = transcript.challenge_fr("sumcheck_r");
        out.challenges.push_back(r);
        out.proof.round_evals.push_back(std::move(acc));
        // MLE Update (Eq. 2), batched: all tables fold in ONE
        // parallel_for over the flattened (mle, pair) index space, so a
        // round costs a single pool dispatch instead of num_mles of
        // them and short tables still fill worker chunks. Folds write
        // into per-MLE ping-pong scratch (out of place, so chunks never
        // write entries another chunk still reads), then swap.
        ff::ModmulScope update_scope;
        for (size_t m = 0; m < num_mles; ++m) scratch[m].resize(pairs);
        ff::parallel_for(
            num_mles * pairs,
            [&](size_t begin, size_t end) {
                for (size_t idx = begin; idx < end; ++idx) {
                    const size_t m = idx / pairs;
                    const size_t i = idx % pairs;
                    const auto &t = tables[m];
                    scratch[m][i] = t[2 * i] + (t[2 * i + 1] - t[2 * i]) * r;
                }
            },
            std::max<size_t>(size_t(64), 4096 / std::max<size_t>(num_mles, 1)));
        for (size_t m = 0; m < num_mles; ++m) tables[m].swap(scratch[m]);
        if (costs != nullptr) {
            costs->update_modmuls += update_scope.total_delta();
            costs->update_bytes_in += num_mles * len * 32;
            costs->update_bytes_out += num_mles * pairs * 32;
        }
        len = pairs;
    }

    out.final_mle_values.reserve(num_mles);
    for (size_t m = 0; m < num_mles; ++m) {
        out.final_mle_values.push_back(tables[m][0]);
    }
    return out;
}

SumcheckVerifierResult
sumcheck_verify(const Fr &claimed_sum, size_t num_vars, size_t degree,
                const SumcheckProof &proof, Transcript &transcript)
{
    SumcheckVerifierResult out;
    degree = std::max<size_t>(degree, 1);
    if (proof.num_vars != num_vars || proof.degree != degree ||
        proof.round_evals.size() != num_vars) {
        return out;
    }
    Fr claim = claimed_sum;
    for (size_t round = 0; round < num_vars; ++round) {
        const auto &evals = proof.round_evals[round];
        if (evals.size() != degree + 1) return out;
        if (evals[0] + evals[1] != claim) return out;
        transcript.append_frs("sumcheck_round", evals);
        Fr r = transcript.challenge_fr("sumcheck_r");
        out.challenges.push_back(r);
        claim = interpolate_univariate(evals, r);
    }
    out.final_value = claim;
    out.ok = true;
    return out;
}

}  // namespace zkspeed::hyperplonk
