#include "hyperplonk/circuit.hpp"

#include <cassert>
#include <stdexcept>
#include <unordered_map>

#include "lookup/logup.hpp"

namespace zkspeed::hyperplonk {

Mle
CircuitIndex::identity_mle(size_t j) const
{
    const size_t n = num_gates();
    Mle id(num_vars);
    for (size_t i = 0; i < n; ++i) {
        id[i] = Fr::from_uint(j * n + i);
    }
    return id;
}

bool
Witness::satisfies_gates(const CircuitIndex &index) const
{
    const size_t n = index.num_gates();
    for (size_t i = 0; i < n; ++i) {
        Fr f = index.q_l[i] * w[0][i] + index.q_r[i] * w[1][i] +
               index.q_m[i] * w[0][i] * w[1][i] - index.q_o[i] * w[2][i] +
               index.q_c[i];
        if (index.custom_gates) {
            Fr w1 = w[0][i];
            Fr w2sq = w1 * w1;
            f += index.q_h[i] * w2sq * w2sq * w1;
        }
        if (!f.is_zero()) return false;
    }
    return true;
}

bool
Witness::satisfies_wiring(const CircuitIndex &index) const
{
    const size_t n = index.num_gates();
    for (size_t j = 0; j < 3; ++j) {
        for (size_t i = 0; i < n; ++i) {
            // sigma values are small integers by construction.
            uint64_t target = index.sigma[j][i].to_repr().limbs[0];
            size_t tj = target / n, ti = target % n;
            if (!(w[j][i] == w[tj][ti])) return false;
        }
    }
    return true;
}

bool
Witness::satisfies_lookups(const CircuitIndex &index) const
{
    if (!index.has_lookup) return true;
    return lookup::rows_satisfy(index.q_lookup, index.table_tag,
                                index.table, index.table_rows,
                                {&w[0], &w[1], &w[2]});
}

std::vector<Fr>
Witness::public_inputs(const CircuitIndex &index) const
{
    std::vector<Fr> out(index.num_public);
    for (size_t i = 0; i < index.num_public; ++i) out[i] = w[0][i];
    return out;
}

Var
CircuitBuilder::add_variable(const Fr &value)
{
    values_.push_back(value);
    return values_.size() - 1;
}

Var
CircuitBuilder::add_public_input(const Fr &value)
{
    Var v = add_variable(value);
    public_inputs_.push_back(v);
    return v;
}

Var
CircuitBuilder::new_gate_output(const Fr &ql, const Fr &qr, const Fr &qm,
                                const Fr &qc, Var a, Var b,
                                const Fr &out_value)
{
    Var c = add_variable(out_value);
    gates_.push_back(Gate{ql, qr, qm, Fr::one(), qc, a, b, c});
    return c;
}

Var
CircuitBuilder::add_addition(Var a, Var b)
{
    return new_gate_output(Fr::one(), Fr::one(), Fr::zero(), Fr::zero(),
                           a, b, values_[a] + values_[b]);
}

Var
CircuitBuilder::add_subtraction(Var a, Var b)
{
    return new_gate_output(Fr::one(), -Fr::one(), Fr::zero(), Fr::zero(),
                           a, b, values_[a] - values_[b]);
}

Var
CircuitBuilder::add_multiplication(Var a, Var b)
{
    return new_gate_output(Fr::zero(), Fr::zero(), Fr::one(), Fr::zero(),
                           a, b, values_[a] * values_[b]);
}

Var
CircuitBuilder::add_constant_addition(Var a, const Fr &c)
{
    return new_gate_output(Fr::one(), Fr::zero(), Fr::zero(), c,
                           a, a, values_[a] + c);
}

Var
CircuitBuilder::add_pow5_gate(Var a)
{
    // q_H w1^5 - q_O w3 == 0 with q_H = q_O = 1.
    Fr v = values_[a];
    Fr v2 = v * v;
    Var out = add_variable(v2 * v2 * v);
    gates_.push_back(Gate{Fr::zero(), Fr::zero(), Fr::zero(), Fr::one(),
                          Fr::zero(), a, a, out, Fr::one()});
    return out;
}

void
CircuitBuilder::assert_constant(Var a, const Fr &c)
{
    // qL w1 + qC == 0 with qL = 1, qC = -c.
    gates_.push_back(Gate{Fr::one(), Fr::zero(), Fr::zero(), Fr::zero(),
                          -c, a, a, a});
}

void
CircuitBuilder::assert_equal(Var a, Var b)
{
    // w1 - w2 == 0.
    gates_.push_back(Gate{Fr::one(), -Fr::one(), Fr::zero(), Fr::zero(),
                          Fr::zero(), a, b, a});
}

void
CircuitBuilder::assert_boolean(Var a)
{
    // a*a - a == 0.
    gates_.push_back(Gate{-Fr::one(), Fr::zero(), Fr::one(), Fr::zero(),
                          Fr::zero(), a, a, a});
}

void
CircuitBuilder::add_custom_gate(const Fr &ql, const Fr &qr, const Fr &qm,
                                const Fr &qo, const Fr &qc, Var a, Var b,
                                Var c)
{
    gates_.push_back(Gate{ql, qr, qm, qo, qc, a, b, c});
}

size_t
CircuitBuilder::add_table(lookup::Table table)
{
    if (table.empty()) {
        throw std::logic_error("CircuitBuilder: empty lookup table");
    }
    if (tables_.size() >= lookup::kMaxTablesPerCircuit) {
        throw std::logic_error(
            "CircuitBuilder: at most " +
            std::to_string(lookup::kMaxTablesPerCircuit) +
            " fused tables per circuit (wire-format tag bound)");
    }
    // Check the fused bank against the height bound at registration so
    // the failure names the table that broke the budget, not a later
    // build() call.
    size_t total = table.size();
    for (const auto &t : tables_) total += t.size();
    if (total > (size_t(1) << max_vars_)) {
        throw lookup::TableSizeError(table.name, table.size(), total,
                                     max_vars_);
    }
    tables_.push_back(std::move(table));
    return tables_.size();
}

void
CircuitBuilder::set_table(lookup::Table table)
{
    if (!tables_.empty()) {
        throw std::logic_error(
            "CircuitBuilder::set_table: a table is already registered — "
            "use add_table to fuse more tables into the bank");
    }
    add_table(std::move(table));
}

void
CircuitBuilder::add_lookup_gate(size_t tag, Var a, Var b, Var c)
{
    if (tag == 0 || tag > tables_.size()) {
        throw std::logic_error(
            "CircuitBuilder: lookup gate against unregistered table tag " +
            std::to_string(tag) + " (" + std::to_string(tables_.size()) +
            " tables registered; add_table first)");
    }
    Gate g{Fr::zero(), Fr::zero(), Fr::zero(), Fr::zero(), Fr::zero(),
           a, b, c};
    g.lookup_tag = uint32_t(tag);
    gates_.push_back(g);
}

std::pair<CircuitIndex, Witness>
CircuitBuilder::build(size_t min_vars) const
{
    // Public-input gates (zero selectors, value in w1) come first so the
    // verifier can evaluate w1 over the public prefix.
    std::vector<Gate> all;
    all.reserve(public_inputs_.size() + gates_.size());
    for (Var v : public_inputs_) {
        all.push_back(Gate{Fr::zero(), Fr::zero(), Fr::zero(), Fr::zero(),
                           Fr::zero(), v, v, v});
    }
    all.insert(all.end(), gates_.begin(), gates_.end());

    // The fused table bank shares the hypercube index space with the
    // gates, so the circuit must be at least as tall as the bank.
    size_t bank_rows = 0;
    for (const auto &t : tables_) bank_rows += t.size();
    size_t mu = min_vars;
    while ((size_t(1) << mu) < all.size() ||
           (size_t(1) << mu) < bank_rows) {
        ++mu;
    }
    // (Bank height vs. 2^max_vars is enforced at add_table time — the
    // single point that can name the table that broke the budget.)
    const size_t n = size_t(1) << mu;

    CircuitIndex index;
    index.num_vars = mu;
    index.num_public = public_inputs_.size();
    index.q_l = Mle(mu);
    index.q_r = Mle(mu);
    index.q_m = Mle(mu);
    index.q_o = Mle(mu);
    index.q_c = Mle(mu);
    index.q_h = Mle(mu);
    if (!tables_.empty()) {
        index.has_lookup = true;
        index.table_rows = bank_rows;
        index.q_lookup = Mle(mu);
        for (auto &t : index.table) t = Mle(mu);
        index.table_row_counts.reserve(tables_.size());
        // Concatenate the tables in tag order; padding rows repeat bank
        // row 0 (tag included): duplicates only add poles the
        // multiplicity MLE can leave at zero. The tag column itself has
        // one shared definition (lookup::build_tag_column) so the wire
        // decoder's reconstruction can never diverge from it.
        size_t j = 0;
        for (size_t ti = 0; ti < tables_.size(); ++ti) {
            index.table_row_counts.push_back(tables_[ti].size());
            for (const auto &row : tables_[ti].rows) {
                for (size_t k = 0; k < 3; ++k) index.table[k][j] = row[k];
                ++j;
            }
        }
        for (; j < n; ++j) {
            for (size_t k = 0; k < 3; ++k) {
                index.table[k][j] = index.table[k][0];
            }
        }
        index.table_tag =
            lookup::build_tag_column(index.table_row_counts, mu);
    }
    Witness wit;
    for (auto &w : wit.w) w = Mle(mu);

    // Slot -> variable map (SIZE_MAX marks an unconstrained slot).
    std::vector<std::array<size_t, 3>> slot_var(
        n, {SIZE_MAX, SIZE_MAX, SIZE_MAX});
    for (size_t i = 0; i < all.size(); ++i) {
        const Gate &g = all[i];
        index.q_l[i] = g.ql;
        index.q_r[i] = g.qr;
        index.q_m[i] = g.qm;
        index.q_o[i] = g.qo;
        index.q_c[i] = g.qc;
        index.q_h[i] = g.qh;
        if (!g.qh.is_zero()) index.custom_gates = true;
        if (g.lookup_tag != 0) {
            index.q_lookup[i] = Fr::from_uint(g.lookup_tag);
        }
        wit.w[0][i] = values_[g.a];
        wit.w[1][i] = values_[g.b];
        wit.w[2][i] = values_[g.c];
        slot_var[i] = {g.a, g.b, g.c};
    }
    // Padding gates stay all-zero; their slots are free.

    // Build sigma: slots sharing a variable form one cycle.
    std::unordered_map<size_t, std::vector<size_t>> uses;  // var -> slots
    for (size_t i = 0; i < n; ++i) {
        for (size_t j = 0; j < 3; ++j) {
            if (slot_var[i][j] != SIZE_MAX) {
                uses[slot_var[i][j]].push_back(j * n + i);
            }
        }
    }
    for (size_t j = 0; j < 3; ++j) {
        index.sigma[j] = index.identity_mle(j);
    }
    for (auto &[var, slots] : uses) {
        for (size_t k = 0; k < slots.size(); ++k) {
            size_t from = slots[k];
            size_t to = slots[(k + 1) % slots.size()];
            index.sigma[from / n][from % n] = Fr::from_uint(to);
        }
    }
    return {std::move(index), std::move(wit)};
}

std::pair<CircuitIndex, Witness>
random_circuit(size_t num_vars, std::mt19937_64 &rng, double dense_fraction)
{
    const size_t n = size_t(1) << num_vars;
    std::uniform_real_distribution<double> uni(0.0, 1.0);

    CircuitIndex index;
    index.num_vars = num_vars;
    index.num_public = std::min<size_t>(4, n / 4);
    if (index.num_public == 0) index.num_public = 1;
    index.q_l = Mle(num_vars);
    index.q_r = Mle(num_vars);
    index.q_m = Mle(num_vars);
    index.q_o = Mle(num_vars);
    index.q_c = Mle(num_vars);
    index.q_h = Mle(num_vars);
    Witness wit;
    for (auto &w : wit.w) w = Mle(num_vars);

    // Sample witness inputs with the paper's sparsity statistics: the
    // non-dense mass splits evenly between 0s and 1s (Section 6.2).
    auto sparse_value = [&]() -> Fr {
        double u = uni(rng);
        if (u < dense_fraction) return Fr::random(rng);
        return (u < dense_fraction + (1.0 - dense_fraction) / 2)
                   ? Fr::zero()
                   : Fr::one();
    };

    // Slot variable ids for copy-constraint construction.
    std::vector<std::array<size_t, 3>> slot_var(
        n, {SIZE_MAX, SIZE_MAX, SIZE_MAX});
    size_t next_var = 0;

    for (size_t i = 0; i < n; ++i) {
        if (i < index.num_public) {
            // Public-input gate: zero selectors, value in w1.
            wit.w[0][i] = sparse_value();
            slot_var[i][0] = next_var++;
            continue;
        }
        // Inputs: fresh sparse values, or copies of earlier outputs.
        for (size_t j = 0; j < 2; ++j) {
            if (i > index.num_public + 1 && uni(rng) < 0.3) {
                size_t src =
                    index.num_public +
                    size_t(uni(rng) * double(i - index.num_public));
                wit.w[j][i] = wit.w[2][src];
                slot_var[i][j] = slot_var[src][2];
            } else {
                wit.w[j][i] = sparse_value();
                slot_var[i][j] = next_var++;
            }
        }
        // Gate type mix: add / mul / affine-with-constant.
        double t = uni(rng);
        if (t < 0.4) {
            index.q_l[i] = Fr::one();
            index.q_r[i] = Fr::one();
        } else if (t < 0.8) {
            index.q_m[i] = Fr::one();
        } else {
            index.q_l[i] = Fr::one();
            index.q_c[i] = sparse_value();
        }
        index.q_o[i] = Fr::one();
        wit.w[2][i] = index.q_l[i] * wit.w[0][i] +
                      index.q_r[i] * wit.w[1][i] +
                      index.q_m[i] * wit.w[0][i] * wit.w[1][i] +
                      index.q_c[i];
        slot_var[i][2] = next_var++;
    }

    // Sigma from variable cycles (as in CircuitBuilder::build).
    std::unordered_map<size_t, std::vector<size_t>> uses;
    for (size_t i = 0; i < n; ++i) {
        for (size_t j = 0; j < 3; ++j) {
            if (slot_var[i][j] != SIZE_MAX) {
                uses[slot_var[i][j]].push_back(j * n + i);
            }
        }
    }
    for (size_t j = 0; j < 3; ++j) index.sigma[j] = index.identity_mle(j);
    for (auto &[var, slots] : uses) {
        for (size_t k = 0; k < slots.size(); ++k) {
            size_t from = slots[k];
            size_t to = slots[(k + 1) % slots.size()];
            index.sigma[from / n][from % n] = Fr::from_uint(to);
        }
    }
    return {std::move(index), std::move(wit)};
}

}  // namespace zkspeed::hyperplonk
