/**
 * @file
 * Strict little-endian byte codecs shared by every wire format in the
 * repository (proofs, verifying keys, runtime job requests/responses).
 *
 * ByteWriter appends fixed-width primitives; ByteReader consumes them
 * with fail-closed semantics: any out-of-range read, non-canonical
 * field element or off-curve point latches the failed() flag and every
 * subsequent read returns a zero value. Callers check failed() /
 * fully_consumed() once at the end instead of after every read, which
 * keeps decoders linear and makes "reject, never crash" the default.
 */
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "curve/g1.hpp"

namespace zkspeed::hyperplonk::serde {

class ByteWriter
{
  public:
    std::vector<uint8_t> buf;

    void
    u8(uint8_t v)
    {
        buf.push_back(v);
    }

    void
    u64(uint64_t v)
    {
        for (int i = 0; i < 8; ++i) buf.push_back(uint8_t(v >> (8 * i)));
    }

    void
    fr(const ff::Fr &x)
    {
        size_t off = buf.size();
        buf.resize(off + ff::Fr::kByteSize);
        x.to_bytes(buf.data() + off);
    }

    void
    fq(const ff::Fq &x)
    {
        size_t off = buf.size();
        buf.resize(off + ff::Fq::kByteSize);
        x.to_bytes(buf.data() + off);
    }

    void
    g1(const curve::G1Affine &p)
    {
        u8(p.infinity ? 1 : 0);
        fq(p.infinity ? ff::Fq::zero() : p.x);
        fq(p.infinity ? ff::Fq::zero() : p.y);
    }

    /** Length-prefixed Fr vector. */
    void
    frs(std::span<const ff::Fr> xs)
    {
        u64(xs.size());
        for (const auto &x : xs) fr(x);
    }

    /** Length-prefixed opaque byte blob (nested encodings). */
    void
    bytes(std::span<const uint8_t> data)
    {
        u64(data.size());
        buf.insert(buf.end(), data.begin(), data.end());
    }
};

class ByteReader
{
  public:
    explicit ByteReader(std::span<const uint8_t> bytes) : data_(bytes) {}

    bool failed() const { return failed_; }
    bool fully_consumed() const { return !failed_ && pos_ == data_.size(); }

    uint8_t
    u8()
    {
        if (pos_ + 1 > data_.size()) {
            failed_ = true;
            return 0;
        }
        return data_[pos_++];
    }

    uint64_t
    u64()
    {
        if (pos_ + 8 > data_.size()) {
            failed_ = true;
            return 0;
        }
        uint64_t v = 0;
        for (int i = 0; i < 8; ++i) {
            v |= uint64_t(data_[pos_ + i]) << (8 * i);
        }
        pos_ += 8;
        return v;
    }

    /** Strict field decode: value must be canonical (< modulus). */
    template <typename F>
    F
    field()
    {
        if (pos_ + F::kByteSize > data_.size()) {
            failed_ = true;
            return F::zero();
        }
        typename F::Repr r;
        for (size_t i = 0; i < F::kLimbs; ++i) {
            uint64_t limb = 0;
            for (size_t b = 0; b < 8; ++b) {
                limb |= uint64_t(data_[pos_ + i * 8 + b]) << (8 * b);
            }
            r.limbs[i] = limb;
        }
        pos_ += F::kByteSize;
        if (!(r < F::kModulus)) {
            failed_ = true;
            return F::zero();
        }
        return F::from_repr(r);
    }

    ff::Fr fr() { return field<ff::Fr>(); }

    /** Strict point decode: must be on the curve. */
    curve::G1Affine
    g1()
    {
        uint8_t inf = u8();
        ff::Fq x = field<ff::Fq>();
        ff::Fq y = field<ff::Fq>();
        if (failed_) return curve::G1Affine::identity();
        if (inf == 1) {
            if (!x.is_zero() || !y.is_zero()) failed_ = true;
            return curve::G1Affine::identity();
        }
        if (inf != 0) {
            failed_ = true;
            return curve::G1Affine::identity();
        }
        curve::G1Affine p(x, y);
        if (!p.is_on_curve()) {
            failed_ = true;
            return curve::G1Affine::identity();
        }
        return p;
    }

    std::vector<ff::Fr>
    frs(uint64_t max_len)
    {
        uint64_t n = u64();
        if (n > max_len) {
            failed_ = true;
            return {};
        }
        std::vector<ff::Fr> out;
        out.reserve(n);
        for (uint64_t i = 0; i < n && !failed_; ++i) out.push_back(fr());
        return out;
    }

    /** Length-prefixed opaque byte blob, bounded by max_len. */
    std::vector<uint8_t>
    bytes(uint64_t max_len)
    {
        uint64_t n = u64();
        if (n > max_len || pos_ + n > data_.size()) {
            failed_ = true;
            return {};
        }
        std::vector<uint8_t> out(data_.begin() + pos_,
                                 data_.begin() + pos_ + n);
        pos_ += n;
        return out;
    }

  private:
    std::span<const uint8_t> data_;
    size_t pos_ = 0;
    bool failed_ = false;
};

/** Upper bound on accepted round counts / variable counts (DoS hygiene). */
constexpr uint64_t kMaxVars = 40;
/** Upper bound on accepted sumcheck degrees. */
constexpr uint64_t kMaxDegree = 16;

}  // namespace zkspeed::hyperplonk::serde
