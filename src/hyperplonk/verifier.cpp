#include <cassert>

#include "hyperplonk/permutation.hpp"
#include "hyperplonk/prover.hpp"
#include "hyperplonk/protocol_common.hpp"

namespace zkspeed::hyperplonk {

using namespace detail;

namespace {

/** Rebuild the padded public-input MLE the prover's w1 prefix must match. */
Mle
public_input_mle(std::span<const Fr> publics, size_t num_public)
{
    size_t k = pub_vars(num_public);
    Mle m(k);
    for (size_t i = 0; i < publics.size(); ++i) m[i] = publics[i];
    return m;
}

/**
 * Shared verification body. With `acc` set the PCS check is deferred
 * into the accumulator (mode is ignored); with `acc` null the check
 * runs inline in the requested mode.
 */
bool
verify_impl(const VerifyingKey &vk, std::span<const Fr> public_inputs,
            const Proof &proof, PcsCheckMode mode,
            zkspeed::verifier::PairingAccumulator *acc)
{
    const size_t mu = vk.num_vars;
    const size_t n = size_t(1) << mu;
    if (public_inputs.size() != vk.num_public) return false;

    hash::Transcript tr("hyperplonk-v1");
    bind_preamble(tr, mu, vk.num_public, vk.custom_gates, vk.has_lookup,
                  vk.selector_comms, vk.sigma_comms, vk.lookup_comms,
                  public_inputs);

    // Step 1: witness commitments (+ lookup multiplicity commitment).
    for (const auto &c : proof.witness_comms) {
        append_g1(tr, "witness_comm", c);
    }
    if (proof.evals.lookup != vk.has_lookup) return false;
    if (vk.has_lookup) append_g1(tr, "lookup_m_comm", proof.m_comm);

    // Step 2: Gate Identity (ZeroCheck, degree 4, claimed sum 0).
    if (proof.evals.custom != vk.custom_gates) return false;
    std::vector<Fr> r_z = tr.challenge_frs("zerocheck_r", mu);
    size_t zc_degree = vk.custom_gates ? 7 : 4;
    auto zc = sumcheck_verify(Fr::zero(), mu, zc_degree, proof.zerocheck,
                              tr);
    if (!zc.ok) return false;
    std::span<const Fr> r_g = zc.challenges;

    // Step 3: Wiring Identity (PermCheck, degree 5, claimed sum 0).
    Fr beta = tr.challenge_fr("beta");
    Fr gamma = tr.challenge_fr("gamma");
    append_g1(tr, "phi_comm", proof.phi_comm);
    append_g1(tr, "pi_comm", proof.pi_comm);
    Fr alpha = tr.challenge_fr("alpha");
    std::vector<Fr> r_z2 = tr.challenge_frs("permcheck_r", mu);
    auto pc = sumcheck_verify(Fr::zero(), mu, 5, proof.permcheck, tr);
    if (!pc.ok) return false;
    std::span<const Fr> r_p = pc.challenges;

    // Step 3.5: Lookup Argument (LookupCheck, degree 3, claimed sum 0).
    Fr lk_lambda, lk_gamma, lk_alpha;
    std::vector<Fr> r_z3;
    SumcheckVerifierResult lc;
    std::span<const Fr> r_l;
    if (vk.has_lookup) {
        lk_lambda = tr.challenge_fr("lookup_lambda");
        lk_gamma = tr.challenge_fr("lookup_gamma");
        append_g1(tr, "lookup_hf_comm", proof.hf_comm);
        append_g1(tr, "lookup_ht_comm", proof.ht_comm);
        lk_alpha = tr.challenge_fr("lookup_alpha");
        r_z3 = tr.challenge_frs("lookupcheck_r", mu);
        lc = sumcheck_verify(Fr::zero(), mu, kLookupCheckDegree,
                             proof.lookupcheck, tr);
        if (!lc.ok) return false;
        r_l = lc.challenges;
    }

    // Step 4: batch evaluations enter the transcript.
    std::vector<Fr> z_pub = tr.challenge_frs("pub_r", pub_vars(vk.num_public));
    auto points = make_points(r_g, r_p, z_pub, mu, r_l);
    std::vector<Fr> claim_values = proof.evals.flatten();
    tr.append_frs("batch_evals", claim_values);

    // --- Check the ZeroCheck final value against the claimed evals. ---
    {
        Fr expect = gate_expression(proof.evals) *
                    Mle::eq_eval(r_g, r_z);
        if (!(expect == zc.final_value)) return false;
    }
    // --- Check the PermCheck final value (Eq. 4 at r_p). ---
    {
        const auto &e = proof.evals.at_perm;  // w1,w2,w3,s1,s2,s3,phi,pi
        Fr nd_n = Fr::one(), nd_d = Fr::one();
        for (size_t j = 0; j < 3; ++j) {
            nd_n *= e[j] + beta * identity_eval(j, mu, r_p) + gamma;
            nd_d *= e[j] + beta * e[3 + j] + gamma;
        }
        Fr x_last = r_p[mu - 1];
        Fr p1 = eval_p1_from_children(x_last, proof.evals.at_u0[0],
                                      proof.evals.at_u0[1]);
        Fr p2 = eval_p1_from_children(x_last, proof.evals.at_u1[0],
                                      proof.evals.at_u1[1]);
        Fr expr = e[7] - p1 * p2 + alpha * (e[6] * nd_d - nd_n);
        Fr expect = expr * Mle::eq_eval(r_p, r_z2);
        if (!(expect == pc.final_value)) return false;
    }
    // --- Check the LookupCheck final value against the claimed evals. ---
    if (vk.has_lookup) {
        Fr expect = lookup_expression(proof.evals.at_lookup, lk_lambda,
                                      lk_gamma, lk_alpha,
                                      Mle::eq_eval(r_l, r_z3));
        if (!(expect == lc.final_value)) return false;
    }
    // --- Product-tree root must be exactly 1 (grand product check). ---
    if (!proof.evals.pi_at_root.is_one()) return false;
    // --- Public inputs: w1 over the public prefix matches the claim. ---
    {
        Mle pub = public_input_mle(public_inputs, vk.num_public);
        if (!(pub.evaluate(z_pub) == proof.evals.w1_at_pub)) return false;
    }

    // Step 5: OpenCheck + PCS opening of g'.
    Fr a = tr.challenge_fr("batch_a");
    auto claims = claim_list(vk.custom_gates, vk.has_lookup);
    if (claim_values.size() != claims.size()) return false;
    std::vector<Fr> pw = powers(a, claims.size());
    Fr claimed_sum = Fr::zero();
    for (size_t c = 0; c < claims.size(); ++c) {
        claimed_sum += pw[c] * claim_values[c];
    }
    auto oc = sumcheck_verify(claimed_sum, mu, 2, proof.opencheck, tr);
    if (!oc.ok) return false;
    std::span<const Fr> r_o = oc.challenges;

    // f_open(r_o) == g'(r_o): both equal sum_j eq(r_o,z_j) y_j(r_o).
    if (!(oc.final_value == proof.gprime_value)) return false;

    // Homomorphically derive C_{g'} = sum_c a^c eq(r_o, z_{point(c)})
    // * C_{poly(c)} from the known commitments.
    std::vector<Fr> k_vals(points.size());
    for (size_t j = 0; j < points.size(); ++j) {
        k_vals[j] = Mle::eq_eval(r_o, points[j]);
    }
    std::array<Fr, kNumPolys> coeff{};
    for (size_t c = 0; c < claims.size(); ++c) {
        coeff[claims[c].poly] += pw[c] * k_vals[claims[c].point];
    }
    const std::array<G1Affine, kNumPolys> comms = {
        vk.selector_comms[0], vk.selector_comms[1], vk.selector_comms[2],
        vk.selector_comms[3], vk.selector_comms[4], vk.selector_comms[5],
        proof.witness_comms[0], proof.witness_comms[1],
        proof.witness_comms[2],
        vk.sigma_comms[0], vk.sigma_comms[1], vk.sigma_comms[2],
        proof.phi_comm, proof.pi_comm,
        vk.lookup_comms[0], vk.lookup_comms[1], vk.lookup_comms[2],
        vk.lookup_comms[3], vk.lookup_comms[4],
        proof.m_comm, proof.hf_comm, proof.ht_comm};
    curve::G1 c_gprime = curve::msm(comms, coeff);

    tr.append_fr("gprime_value", proof.gprime_value);
    for (const auto &q : proof.gprime_proof.quotients) {
        append_g1(tr, "gprime_quotient", q);
    }

    G1Affine c_aff = c_gprime.to_affine();
    if (acc != nullptr) {
        return pcs::accumulate(*vk.srs, c_aff, r_o, proof.gprime_value,
                               proof.gprime_proof, *acc);
    }
    if (mode == PcsCheckMode::ideal) {
        assert(!vk.srs->trapdoor.empty() &&
               "ideal mode requires a test-mode SRS");
        return pcs::verify_ideal(*vk.srs, c_aff, r_o, proof.gprime_value,
                                 proof.gprime_proof);
    }
    return pcs::verify(*vk.srs, c_aff, r_o, proof.gprime_value,
                       proof.gprime_proof);
    (void)n;
}

}  // namespace

bool
verify(const VerifyingKey &vk, std::span<const Fr> public_inputs,
       const Proof &proof, PcsCheckMode mode)
{
    return verify_impl(vk, public_inputs, proof, mode, nullptr);
}

bool
verify_deferred(const VerifyingKey &vk, std::span<const Fr> public_inputs,
                const Proof &proof, zkspeed::verifier::PairingAccumulator &acc)
{
    return verify_impl(vk, public_inputs, proof, PcsCheckMode::pairing,
                       &acc);
}

}  // namespace zkspeed::hyperplonk
