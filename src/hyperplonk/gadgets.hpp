/**
 * @file
 * Circuit gadget library: reusable constraint patterns layered on
 * CircuitBuilder.
 *
 * Includes the boolean/arithmetic building blocks every Plonk front end
 * ships (bit decomposition, range checks, boolean logic, multiplexers,
 * equality tests) plus an algebraic sponge permutation in the style of
 * Rescue — the hash whose 2^12-invocation workload appears in the
 * paper's Table 3.
 */
#pragma once

#include <cstdint>
#include <vector>

#include "hyperplonk/circuit.hpp"

namespace zkspeed::hyperplonk::gadgets {

/** Allocate a constant-valued, constant-constrained variable. */
Var constant(CircuitBuilder &cb, const Fr &c);

/** out = a XOR b for boolean a, b (inputs must already be boolean). */
Var logic_xor(CircuitBuilder &cb, Var a, Var b);

/** out = a AND b. */
Var logic_and(CircuitBuilder &cb, Var a, Var b);

/** out = a OR b. */
Var logic_or(CircuitBuilder &cb, Var a, Var b);

/** out = NOT a. */
Var logic_not(CircuitBuilder &cb, Var a);

/** out = sel ? a : b for boolean sel. */
Var mux(CircuitBuilder &cb, Var sel, Var a, Var b);

/**
 * Decompose `v` into `bits` boolean variables (LSB first) and constrain
 * the weighted sum to reconstruct it — a range check to [0, 2^bits).
 */
std::vector<Var> bit_decompose(CircuitBuilder &cb, Var v, unsigned bits);

/** Constrain v in [0, 2^bits) (bit_decompose, discarding the bits). */
void range_check(CircuitBuilder &cb, Var v, unsigned bits);

/**
 * Range check via the lookup argument: one lookup gate asserting
 * (v, 0, 0) is a row of the table with tag `table` (default the first
 * registered table), which must be a lookup::Table::range table
 * (cb.add_table/set_table first). The two zero wires are fresh
 * unconstrained variables — the vector lookup itself pins them to the
 * table's zero columns. ~2b+2x fewer gates than range_check at the
 * same bit width.
 */
void range_via_lookup(CircuitBuilder &cb, Var v, size_t table = 1);

/**
 * out = a XOR b via the lookup argument: one lookup gate asserting
 * (a, b, out) is a row of the table with tag `table` (default the
 * first registered table), which must be a lookup::Table::xor_table
 * (cb.add_table/set_table first). Also range-checks a and b to the
 * table's bit width for free. Inputs must hold small integer values
 * (the witness XOR is computed on their low limb).
 */
Var xor_via_lookup(CircuitBuilder &cb, Var a, Var b, size_t table = 1);

/** out = 1 if a == b else 0 (uses a witness inverse hint). */
Var is_equal(CircuitBuilder &cb, Var a, Var b);

/** out = x^5, the Rescue/Poseidon S-box, in three gates. */
Var pow5(CircuitBuilder &cb, Var x);

/**
 * Inverse S-box y = x^{1/5}: the prover supplies y as a hint and the
 * circuit checks y^5 == x (how real Rescue circuits avoid in-circuit
 * inversion).
 */
Var pow5_inverse(CircuitBuilder &cb, Var x);

/**
 * A Rescue-style algebraic sponge permutation over a width-3 state:
 * alternating x^5 / x^{1/5} S-box layers with an MDS-like linear mix
 * and round constants. This is a structural stand-in with the same
 * gate profile as Rescue (see DESIGN.md substitutions) — the paper's
 * workload cares about circuit shape, not the exact constants.
 */
struct RescueParams {
    unsigned rounds = 6;
    /** Use the q_H x^5 custom gate (one gate per forward S-box instead
     * of three; the Jellyfish-style extension of the paper's Sec. 8). */
    bool use_custom_gates = false;
    /** Deterministic round constants derived from a seed. */
    static RescueParams standard();
    static RescueParams with_custom_gates();
};

/** Apply the permutation in-circuit to a width-3 state. */
std::array<Var, 3> rescue_permutation(CircuitBuilder &cb,
                                      std::array<Var, 3> state,
                                      const RescueParams &params =
                                          RescueParams::standard());

/**
 * Rescue-sponge hash of two field elements (rate 2, capacity 1).
 * @return the variable holding H(a, b).
 */
Var rescue_hash2(CircuitBuilder &cb, Var a, Var b,
                 const RescueParams &params = RescueParams::standard());

/** Pure-software evaluation of the same permutation (for tests). */
std::array<Fr, 3> rescue_permutation_value(std::array<Fr, 3> state,
                                           const RescueParams &params =
                                               RescueParams::standard());

/** Pure-software H(a, b) matching rescue_hash2. */
Fr rescue_hash2_value(const Fr &a, const Fr &b,
                      const RescueParams &params =
                          RescueParams::standard());

}  // namespace zkspeed::hyperplonk::gadgets
