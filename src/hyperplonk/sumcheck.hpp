/**
 * @file
 * The SumCheck protocol over virtual polynomials.
 *
 * P proves knowledge of H = sum over the boolean hypercube of a virtual
 * polynomial (paper Section 2.2). Each round the prover sends the
 * univariate round polynomial as evaluations at 0..d (d = max term
 * degree), the verifier checks g(0) + g(1) against the running claim,
 * derives a challenge via the Fiat-Shamir transcript, and both sides bind
 * the first variable (the MLE Update of Eq. 2).
 *
 * The prover mirrors the zkSpeed SumCheck PE strategy (Section 4.1.1):
 * every distinct MLE is extended to X = 0..d exactly once per hypercube
 * pair, with repeated polynomials (e.g. the eq factor of a ZeroCheck)
 * shared across terms rather than recomputed term-by-term as in the CPU
 * baseline.
 */
#pragma once

#include <vector>

#include "hash/transcript.hpp"
#include "mle/virtual_poly.hpp"

namespace zkspeed::hyperplonk {

using ff::Fr;
using hash::Transcript;
using mle::Mle;
using mle::VirtualPolynomial;

/** Prover messages: per-round evaluations of g_k at X = 0..degree. */
struct SumcheckProof {
    size_t num_vars = 0;
    size_t degree = 0;
    std::vector<std::vector<Fr>> round_evals;
};

/** Prover output: the proof plus bookkeeping the caller needs. */
struct SumcheckProverResult {
    SumcheckProof proof;
    std::vector<Fr> challenges;        ///< the random point r
    std::vector<Fr> final_mle_values;  ///< each MLE evaluated at r
};

/** Verifier output. */
struct SumcheckVerifierResult {
    bool ok = false;
    std::vector<Fr> challenges;
    /** The claimed value of the virtual polynomial at `challenges`; the
     * caller must check it against independently-verified MLE openings. */
    Fr final_value;
};

/**
 * Cost breakdown separating the round-evaluation kernel from the MLE
 * Update kernel, mirroring the paper's Table-1 split ("ZeroCheck Rounds"
 * vs "All MLE Updates"). Bytes are logical table traffic at 32 B/element.
 */
struct SumcheckCosts {
    uint64_t round_modmuls = 0;
    uint64_t update_modmuls = 0;
    uint64_t round_bytes_in = 0;
    uint64_t update_bytes_in = 0;
    uint64_t update_bytes_out = 0;
};

/**
 * Evaluate the degree-d polynomial interpolating (k, evals[k]), k = 0..d,
 * at x (Lagrange form with factorial denominators; the hardware performs
 * the same fixed interpolation step, Section 4.1.1).
 */
Fr interpolate_univariate(std::span<const Fr> evals, const Fr &x);

/** Run the SumCheck prover. The virtual polynomial is not modified. */
SumcheckProverResult sumcheck_prove(const VirtualPolynomial &vp,
                                    Transcript &transcript,
                                    SumcheckCosts *costs = nullptr);

/**
 * Verify a SumCheck transcript against a claimed hypercube sum.
 *
 * @param claimed_sum the value H the prover asserts.
 * @param num_vars expected round count.
 * @param degree expected per-round degree bound.
 */
SumcheckVerifierResult sumcheck_verify(const Fr &claimed_sum,
                                       size_t num_vars, size_t degree,
                                       const SumcheckProof &proof,
                                       Transcript &transcript);

}  // namespace zkspeed::hyperplonk
