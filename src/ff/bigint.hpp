/**
 * @file
 * Fixed-width little-endian multiprecision integers.
 *
 * BigInt<N> is an N x 64-bit unsigned integer used as the representation
 * layer beneath the Montgomery fields (ff/field.hpp). All operations are
 * constexpr so that Montgomery constants (R, R^2, -p^{-1} mod 2^64) can be
 * derived at compile time from the modulus alone, avoiding hand-transcribed
 * magic constants.
 */
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

namespace zkspeed::ff {

using uint128 = unsigned __int128;

/**
 * Fixed-size little-endian big integer. limbs[0] is the least significant
 * 64-bit word.
 */
template <size_t N>
struct BigInt {
    std::array<uint64_t, N> limbs{};

    constexpr BigInt() = default;

    /** Construct from a single 64-bit value. */
    constexpr explicit BigInt(uint64_t v) { limbs[0] = v; }

    constexpr bool operator==(const BigInt &o) const = default;

    /** @return true iff the value is zero. */
    constexpr bool
    is_zero() const
    {
        for (size_t i = 0; i < N; ++i) {
            if (limbs[i] != 0) return false;
        }
        return true;
    }

    /** @return true iff the value is odd. */
    constexpr bool is_odd() const { return limbs[0] & 1; }

    /** @return bit i (0 = least significant). */
    constexpr bool
    bit(size_t i) const
    {
        return (limbs[i / 64] >> (i % 64)) & 1;
    }

    /** @return the index of the highest set bit plus one (0 for zero). */
    constexpr size_t
    num_bits() const
    {
        for (size_t i = N; i-- > 0;) {
            if (limbs[i] != 0) {
                uint64_t w = limbs[i];
                size_t b = 0;
                while (w != 0) { w >>= 1; ++b; }
                return i * 64 + b;
            }
        }
        return 0;
    }

    /**
     * Three-way comparison.
     * @return -1, 0, or +1 as *this <, ==, > o.
     */
    constexpr int
    cmp(const BigInt &o) const
    {
        for (size_t i = N; i-- > 0;) {
            if (limbs[i] < o.limbs[i]) return -1;
            if (limbs[i] > o.limbs[i]) return 1;
        }
        return 0;
    }

    constexpr bool operator<(const BigInt &o) const { return cmp(o) < 0; }
    constexpr bool operator>=(const BigInt &o) const { return cmp(o) >= 0; }

    /**
     * Add with carry-out.
     * @return the carry bit (0 or 1).
     */
    constexpr uint64_t
    add_assign(const BigInt &o)
    {
        uint64_t carry = 0;
        for (size_t i = 0; i < N; ++i) {
            uint128 s = (uint128)limbs[i] + o.limbs[i] + carry;
            limbs[i] = (uint64_t)s;
            carry = (uint64_t)(s >> 64);
        }
        return carry;
    }

    /**
     * Subtract with borrow-out.
     * @return the borrow bit (0 or 1).
     */
    constexpr uint64_t
    sub_assign(const BigInt &o)
    {
        uint64_t borrow = 0;
        for (size_t i = 0; i < N; ++i) {
            uint128 s = (uint128)limbs[i] - o.limbs[i] - borrow;
            limbs[i] = (uint64_t)s;
            borrow = (uint64_t)(s >> 64) & 1;
        }
        return borrow;
    }

    /** Shift right by one bit. */
    constexpr void
    shr1()
    {
        for (size_t i = 0; i + 1 < N; ++i) {
            limbs[i] = (limbs[i] >> 1) | (limbs[i + 1] << 63);
        }
        limbs[N - 1] >>= 1;
    }

    /** Shift left by one bit (discarding overflow). */
    constexpr void
    shl1()
    {
        for (size_t i = N; i-- > 1;) {
            limbs[i] = (limbs[i] << 1) | (limbs[i - 1] >> 63);
        }
        limbs[0] <<= 1;
    }

    /** Full schoolbook product, returning 2N limbs. */
    constexpr BigInt<2 * N>
    mul_wide(const BigInt &o) const
    {
        BigInt<2 * N> r;
        for (size_t i = 0; i < N; ++i) {
            uint64_t carry = 0;
            for (size_t j = 0; j < N; ++j) {
                uint128 s = (uint128)limbs[i] * o.limbs[j] +
                            r.limbs[i + j] + carry;
                r.limbs[i + j] = (uint64_t)s;
                carry = (uint64_t)(s >> 64);
            }
            r.limbs[i + N] = carry;
        }
        return r;
    }

    /**
     * Parse a hexadecimal string (no 0x prefix required but accepted).
     * Digits beyond the capacity of N limbs are rejected by truncation-free
     * parsing: the caller must supply a value that fits.
     */
    static constexpr BigInt
    from_hex(std::string_view s)
    {
        if (s.size() >= 2 && s[0] == '0' && (s[1] == 'x' || s[1] == 'X')) {
            s.remove_prefix(2);
        }
        BigInt r;
        size_t nibble = 0;
        for (size_t i = s.size(); i-- > 0;) {
            char c = s[i];
            uint64_t v = 0;
            if (c >= '0' && c <= '9') v = c - '0';
            else if (c >= 'a' && c <= 'f') v = 10 + (c - 'a');
            else if (c >= 'A' && c <= 'F') v = 10 + (c - 'A');
            else continue;  // allow separators like '_'
            if (nibble < N * 16) {
                r.limbs[nibble / 16] |= v << (4 * (nibble % 16));
            }
            ++nibble;
        }
        return r;
    }

    /** Render as a lowercase hexadecimal string with 0x prefix. */
    std::string
    to_hex() const
    {
        static const char digits[] = "0123456789abcdef";
        std::string s = "0x";
        bool started = false;
        for (size_t i = N; i-- > 0;) {
            for (int shift = 60; shift >= 0; shift -= 4) {
                uint64_t v = (limbs[i] >> shift) & 0xf;
                if (v != 0) started = true;
                if (started) s.push_back(digits[v]);
            }
        }
        if (!started) s.push_back('0');
        return s;
    }
};

/**
 * Binary long division: computes q, r with a = q*d + r, 0 <= r < d.
 * O(bits^2); used only for deriving one-time constants (e.g. the pairing
 * final-exponentiation exponent), never on hot paths.
 */
template <size_t N>
constexpr void
divmod(const BigInt<N> &a, const BigInt<N> &d, BigInt<N> &q, BigInt<N> &r)
{
    q = BigInt<N>();
    r = BigInt<N>();
    for (size_t i = a.num_bits(); i-- > 0;) {
        r.shl1();
        if (a.bit(i)) r.limbs[0] |= 1;
        if (r >= d) {
            r.sub_assign(d);
            q.limbs[i / 64] |= uint64_t(1) << (i % 64);
        }
    }
}

/** Widen a BigInt into more limbs. */
template <size_t M, size_t N>
constexpr BigInt<M>
widen(const BigInt<N> &a)
{
    static_assert(M >= N);
    BigInt<M> r;
    for (size_t i = 0; i < N; ++i) r.limbs[i] = a.limbs[i];
    return r;
}

/** Modular addition of values already reduced mod p. */
template <size_t N>
constexpr BigInt<N>
mod_add(const BigInt<N> &a, const BigInt<N> &b, const BigInt<N> &p)
{
    BigInt<N> r = a;
    uint64_t carry = r.add_assign(b);
    if (carry || r >= p) r.sub_assign(p);
    return r;
}

/** Modular subtraction of values already reduced mod p. */
template <size_t N>
constexpr BigInt<N>
mod_sub(const BigInt<N> &a, const BigInt<N> &b, const BigInt<N> &p)
{
    BigInt<N> r = a;
    if (r.sub_assign(b)) r.add_assign(p);
    return r;
}

/** Compute 2^bits mod p by repeated modular doubling (constexpr-safe). */
template <size_t N>
constexpr BigInt<N>
pow2_mod(size_t bits, const BigInt<N> &p)
{
    BigInt<N> r(1);
    for (size_t i = 0; i < bits; ++i) r = mod_add(r, r, p);
    return r;
}

/** Compute -p^{-1} mod 2^64 via Newton iteration (p must be odd). */
constexpr uint64_t
neg_inv64(uint64_t p0)
{
    uint64_t x = 1;
    for (int i = 0; i < 6; ++i) x *= 2 - p0 * x;  // x = p0^{-1} mod 2^64
    return ~x + 1;                                // -x
}

}  // namespace zkspeed::ff
