#include "ff/ntt.hpp"

#include <cassert>

namespace zkspeed::ff {

Fr
NttDomain::two_adic_root()
{
    static const Fr kRoot = [] {
        // odd = (r - 1) / 2^32.
        BigInt<4> odd = Fr::kModulus;
        odd.sub_assign(BigInt<4>(1));
        for (int i = 0; i < 32; ++i) odd.shr1();
        // c = x^odd has order dividing 2^32; it has order exactly 2^32
        // iff c^(2^31) != 1. Try small candidates.
        for (uint64_t x = 2;; ++x) {
            Fr c = Fr::from_uint(x).pow(odd);
            Fr probe = c;
            for (int i = 0; i < 31; ++i) probe = probe.square();
            if (!probe.is_one()) return c;  // order is exactly 2^32
        }
    }();
    return kRoot;
}

NttDomain::NttDomain(size_t log_n) : log_n_(log_n)
{
    assert(log_n <= 32);
    root_ = two_adic_root();
    for (size_t i = log_n; i < 32; ++i) root_ = root_.square();
    root_inv_ = root_.inverse();
    size_inv_ = Fr::from_uint(size()).inverse();
}

void
NttDomain::transform(std::vector<Fr> &a, const Fr &w)
{
    const size_t n = a.size();
    // Bit-reversal permutation.
    for (size_t i = 1, j = 0; i < n; ++i) {
        size_t bit = n >> 1;
        for (; j & bit; bit >>= 1) j ^= bit;
        j ^= bit;
        if (i < j) std::swap(a[i], a[j]);
    }
    // Iterative Cooley-Tukey butterflies.
    for (size_t len = 2; len <= n; len <<= 1) {
        Fr wlen = w;
        for (size_t l = len; l < n; l <<= 1) wlen = wlen.square();
        for (size_t i = 0; i < n; i += len) {
            Fr wcur = Fr::one();
            for (size_t j = 0; j < len / 2; ++j) {
                Fr u = a[i + j];
                Fr v = a[i + j + len / 2] * wcur;
                a[i + j] = u + v;
                a[i + j + len / 2] = u - v;
                wcur *= wlen;
            }
        }
    }
}

void
NttDomain::forward(std::vector<Fr> &a) const
{
    assert(a.size() == size());
    transform(a, root_);
}

void
NttDomain::inverse(std::vector<Fr> &a) const
{
    assert(a.size() == size());
    transform(a, root_inv_);
    for (auto &x : a) x *= size_inv_;
}

std::vector<Fr>
NttDomain::multiply(std::vector<Fr> a, std::vector<Fr> b) const
{
    assert(a.size() + b.size() - 1 <= size());
    a.resize(size());
    b.resize(size());
    forward(a);
    forward(b);
    for (size_t i = 0; i < a.size(); ++i) a[i] *= b[i];
    inverse(a);
    return a;
}

}  // namespace zkspeed::ff
