/**
 * @file
 * Persistent worker pool behind ff::parallel_for.
 *
 * The seed library spawned and joined fresh std::threads on every
 * parallel_for call, which taxed every sumcheck round and MSM window
 * with thread start-up latency. This pool keeps a set of long-lived
 * workers that service chunked range calls; a call enqueues its chunks,
 * the calling thread itself executes chunks (so progress never depends
 * on a free worker), and idle workers steal the rest.
 *
 * Contract (same as the fork-join version it replaces):
 *  - the chunk partition of [0, n) is a pure function of (n, chunks),
 *    never of which thread runs a chunk, so deterministic merges give
 *    bit-identical results at any worker count;
 *  - modmul counters are exact: chunks run on pool workers measure
 *    their counter delta and migrate it back to the caller, chunks run
 *    inline on the calling thread count directly;
 *  - chunks execute with worker_budget() == 1 so a kernel that nests
 *    parallel_for runs its inner loops inline instead of forking a
 *    second level.
 */
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "ff/counters.hpp"

namespace zkspeed::ff {

inline size_t &
worker_budget()
{
    thread_local size_t n = 0;
    return n;
}

class WorkerPool
{
  public:
    /** One parallel_for invocation: a chunked range plus completion and
     * counter-migration state. Lives on the caller's stack; workers only
     * hold a pointer between claiming a chunk and marking it done, both
     * of which happen under the pool mutex while the caller is still
     * waiting, so the pointer can never dangle. */
    struct Call {
        const std::function<void(size_t, size_t)> *fn = nullptr;
        size_t n = 0;
        size_t per = 0;
        size_t chunks = 0;
        size_t next = 0;  ///< next unclaimed chunk (guarded by pool mutex)
        size_t done = 0;  ///< finished chunks (guarded by pool mutex)
        std::atomic<uint64_t> migrated_fr{0};
        std::atomic<uint64_t> migrated_fq{0};
    };

    static WorkerPool &
    instance()
    {
        static WorkerPool pool;
        return pool;
    }

    /**
     * Run fn over ceil-partitioned chunks of [0, n). At most `chunks`
     * threads (the caller plus pool workers) execute concurrently, so a
     * caller's worker budget bounds its parallelism exactly as before.
     * Blocks until every chunk has finished; worker-side modmul deltas
     * are migrated into the caller's counters before returning.
     */
    void
    run(size_t n, const std::function<void(size_t, size_t)> &fn,
        size_t chunks)
    {
        Call call;
        call.fn = &fn;
        call.n = n;
        call.chunks = chunks;
        call.per = (n + chunks - 1) / chunks;
        {
            std::lock_guard<std::mutex> lock(mu_);
            // The caller runs one chunk at a time itself; keep enough
            // workers around for the rest (old behaviour: a request for
            // W workers really ran on W threads, cores notwithstanding).
            ensure_workers_locked(chunks - 1);
            active_.push_back(&call);
        }
        work_cv_.notify_all();
        // The caller participates: claim and run chunks until none are
        // left, so the call completes even with zero free workers.
        for (;;) {
            size_t idx;
            {
                std::lock_guard<std::mutex> lock(mu_);
                if (call.next >= call.chunks) break;
                idx = call.next++;
            }
            run_chunk(call, idx, /*on_worker=*/false);
            finish_chunk(call);
        }
        {
            std::unique_lock<std::mutex> lock(mu_);
            done_cv_.wait(lock, [&] { return call.done == call.chunks; });
        }
        // Migrate worker-thread counter deltas into the caller.
        modmul_counters().counts[0] += call.migrated_fr.load();
        modmul_counters().counts[1] += call.migrated_fq.load();
    }

    size_t
    worker_count()
    {
        std::lock_guard<std::mutex> lock(mu_);
        return threads_.size();
    }

  private:
    WorkerPool() = default;

    ~WorkerPool()
    {
        {
            std::lock_guard<std::mutex> lock(mu_);
            stop_ = true;
        }
        work_cv_.notify_all();
        for (auto &t : threads_) t.join();
    }

    WorkerPool(const WorkerPool &) = delete;
    WorkerPool &operator=(const WorkerPool &) = delete;

    /** Grow the pool to at least `want` workers (capped; callers asking
     * for more parallelism than the cap still complete — the caller
     * thread drains whatever the pool doesn't pick up). */
    void
    ensure_workers_locked(size_t want)
    {
        constexpr size_t kMaxWorkers = 128;
        want = std::min(want, kMaxWorkers);
        while (threads_.size() < want) {
            threads_.emplace_back([this] { worker_loop(); });
        }
    }

    void
    worker_loop()
    {
        for (;;) {
            Call *call = nullptr;
            size_t idx = 0;
            {
                std::unique_lock<std::mutex> lock(mu_);
                work_cv_.wait(lock, [&] {
                    if (stop_) return true;
                    for (Call *c : active_) {
                        if (c->next < c->chunks) return true;
                    }
                    return false;
                });
                if (stop_) return;
                for (Call *c : active_) {
                    if (c->next < c->chunks) {
                        call = c;
                        idx = c->next++;
                        break;
                    }
                }
                if (call == nullptr) continue;
            }
            run_chunk(*call, idx, /*on_worker=*/true);
            finish_chunk(*call);
        }
    }

    void
    run_chunk(Call &call, size_t idx, bool on_worker)
    {
        size_t begin = idx * call.per;
        size_t end = std::min(call.n, begin + call.per);
        if (begin >= end) return;
        size_t saved_budget = worker_budget();
        worker_budget() = 1;
        if (on_worker) {
            // Counters are thread-local; measure this chunk's delta and
            // migrate it so the caller's instrumentation stays exact.
            ModmulScope scope;
            (*call.fn)(begin, end);
            call.migrated_fr += scope.fr_delta();
            call.migrated_fq += scope.fq_delta();
        } else {
            // Inline on the caller: muls already land on its counters.
            (*call.fn)(begin, end);
        }
        worker_budget() = saved_budget;
    }

    void
    finish_chunk(Call &call)
    {
        bool complete;
        {
            std::lock_guard<std::mutex> lock(mu_);
            complete = (++call.done == call.chunks);
            if (complete) {
                for (size_t i = 0; i < active_.size(); ++i) {
                    if (active_[i] == &call) {
                        active_.erase(active_.begin() + i);
                        break;
                    }
                }
            }
        }
        if (complete) done_cv_.notify_all();
    }

    std::mutex mu_;
    std::condition_variable work_cv_;
    std::condition_variable done_cv_;
    std::vector<Call *> active_;
    std::vector<std::thread> threads_;
    bool stop_ = false;
};

}  // namespace zkspeed::ff
