/**
 * @file
 * Minimal fork-join parallelism for prover kernels.
 *
 * parallel_for splits [0, n) into per-thread ranges; worker threads
 * migrate their thread-local modmul counters back to the caller so the
 * Table-1 instrumentation stays exact under parallel execution. Field
 * arithmetic is exact, so results are bit-identical to serial runs as
 * long as callers merge per-range partial results deterministically.
 */
#pragma once

#include <atomic>
#include <cstddef>
#include <functional>
#include <thread>
#include <vector>

#include "ff/counters.hpp"

namespace zkspeed::ff {

/** Global worker count (default: hardware concurrency; 1 = serial). */
inline size_t &
parallel_threads()
{
    static size_t n = std::max(1u, std::thread::hardware_concurrency());
    return n;
}

/**
 * Run fn(begin, end) over a partition of [0, n). Falls back to a
 * single inline call when the range is small or workers are disabled.
 *
 * @param min_chunk smallest range worth a thread.
 */
inline void
parallel_for(size_t n, const std::function<void(size_t, size_t)> &fn,
             size_t min_chunk = 4096)
{
    size_t workers = parallel_threads();
    if (workers <= 1 || n <= min_chunk) {
        fn(0, n);
        return;
    }
    size_t chunks = std::min(workers, (n + min_chunk - 1) / min_chunk);
    size_t per = (n + chunks - 1) / chunks;
    std::atomic<uint64_t> migrated_fr{0}, migrated_fq{0};
    std::vector<std::thread> threads;
    threads.reserve(chunks);
    for (size_t c = 0; c < chunks; ++c) {
        size_t begin = c * per;
        size_t end = std::min(n, begin + per);
        if (begin >= end) break;
        threads.emplace_back([&, begin, end] {
            ModmulScope scope;
            fn(begin, end);
            migrated_fr += scope.fr_delta();
            migrated_fq += scope.fq_delta();
        });
    }
    for (auto &t : threads) t.join();
    // Migrate worker-thread counter deltas into the caller's counters.
    modmul_counters().counts[0] += migrated_fr.load();
    modmul_counters().counts[1] += migrated_fq.load();
}

/** RAII override of the worker count (tests and benches). */
class ParallelismGuard
{
  public:
    explicit ParallelismGuard(size_t n) : saved_(parallel_threads())
    {
        parallel_threads() = n;
    }
    ~ParallelismGuard() { parallel_threads() = saved_; }

  private:
    size_t saved_;
};

}  // namespace zkspeed::ff
