/**
 * @file
 * Minimal data parallelism for prover kernels.
 *
 * parallel_for splits [0, n) into per-thread ranges executed on a
 * persistent worker pool (ff/thread_pool.hpp) — the calling thread
 * participates, so calls never wait on a busy pool. Worker threads
 * migrate their thread-local modmul counters back to the caller so the
 * Table-1 instrumentation stays exact under parallel execution. Field
 * arithmetic is exact, so results are bit-identical to serial runs as
 * long as callers merge per-range partial results deterministically;
 * the chunk partition depends only on (n, workers, min_chunk), never on
 * which thread runs a chunk.
 */
#pragma once

#include <cstddef>
#include <functional>
#include <thread>

#include "ff/counters.hpp"
#include "ff/thread_pool.hpp"

namespace zkspeed::ff {

/** Global worker count (default: hardware concurrency; 1 = serial). */
inline size_t &
parallel_threads()
{
    static size_t n = std::max(1u, std::thread::hardware_concurrency());
    return n;
}

/** Worker count after applying the calling thread's budget override.
 * worker_budget() (ff/thread_pool.hpp) is the thread-local override a
 * runtime worker sets for its own proof; 0 defers to the global. */
inline size_t
effective_parallelism()
{
    size_t budget = worker_budget();
    return budget != 0 ? budget : parallel_threads();
}

/**
 * Run fn(begin, end) over a partition of [0, n). Falls back to a
 * single inline call when the range is small or workers are disabled.
 *
 * @param min_chunk smallest range worth a thread.
 * @param workers explicit worker budget for this call; 0 uses the
 *        calling thread's budget, falling back to the global count.
 */
inline void
parallel_for(size_t n, const std::function<void(size_t, size_t)> &fn,
             size_t min_chunk = 4096, size_t workers = 0)
{
    if (workers == 0) workers = effective_parallelism();
    if (workers <= 1 || n <= min_chunk) {
        fn(0, n);
        return;
    }
    size_t chunks = std::min(workers, (n + min_chunk - 1) / min_chunk);
    if (chunks <= 1) {
        fn(0, n);
        return;
    }
    WorkerPool::instance().run(n, fn, chunks);
}

/** RAII override of the worker count (tests and benches). */
class ParallelismGuard
{
  public:
    explicit ParallelismGuard(size_t n) : saved_(parallel_threads())
    {
        parallel_threads() = n;
    }
    ~ParallelismGuard() { parallel_threads() = saved_; }

  private:
    size_t saved_;
};

/**
 * RAII override of the *calling thread's* worker budget. Unlike
 * ParallelismGuard this touches no shared state, so concurrent proofs
 * on different threads can carve up the machine without racing: a pool
 * of W runtime workers on C cores gives each worker a budget of about
 * C / W and the per-proof kernels stay within it. Budgets bound the
 * number of chunks a call enqueues on the shared WorkerPool, so a
 * budgeted proof still uses at most its share of threads at a time.
 */
class WorkerBudgetScope
{
  public:
    explicit WorkerBudgetScope(size_t n) : saved_(worker_budget())
    {
        worker_budget() = n;
    }
    ~WorkerBudgetScope() { worker_budget() = saved_; }

    WorkerBudgetScope(const WorkerBudgetScope &) = delete;
    WorkerBudgetScope &operator=(const WorkerBudgetScope &) = delete;

  private:
    size_t saved_;
};

}  // namespace zkspeed::ff
