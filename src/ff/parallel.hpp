/**
 * @file
 * Minimal fork-join parallelism for prover kernels.
 *
 * parallel_for splits [0, n) into per-thread ranges; worker threads
 * migrate their thread-local modmul counters back to the caller so the
 * Table-1 instrumentation stays exact under parallel execution. Field
 * arithmetic is exact, so results are bit-identical to serial runs as
 * long as callers merge per-range partial results deterministically.
 */
#pragma once

#include <atomic>
#include <cstddef>
#include <functional>
#include <thread>
#include <vector>

#include "ff/counters.hpp"

namespace zkspeed::ff {

/** Global worker count (default: hardware concurrency; 1 = serial). */
inline size_t &
parallel_threads()
{
    static size_t n = std::max(1u, std::thread::hardware_concurrency());
    return n;
}

/**
 * Thread-local worker budget; 0 defers to the global parallel_threads().
 *
 * A runtime worker proving one job while other workers prove theirs sets
 * a budget on its own thread (see WorkerBudgetScope) so the kernels it
 * calls fan out to its share of the cores only. Being thread-local, the
 * budget needs no synchronisation and cannot race the way mutating the
 * global from concurrent proofs would.
 */
inline size_t &
worker_budget()
{
    thread_local size_t n = 0;
    return n;
}

/** Worker count after applying the calling thread's budget override. */
inline size_t
effective_parallelism()
{
    size_t budget = worker_budget();
    return budget != 0 ? budget : parallel_threads();
}

/**
 * Run fn(begin, end) over a partition of [0, n). Falls back to a
 * single inline call when the range is small or workers are disabled.
 *
 * @param min_chunk smallest range worth a thread.
 * @param workers explicit worker budget for this call; 0 uses the
 *        calling thread's budget, falling back to the global count.
 */
inline void
parallel_for(size_t n, const std::function<void(size_t, size_t)> &fn,
             size_t min_chunk = 4096, size_t workers = 0)
{
    if (workers == 0) workers = effective_parallelism();
    if (workers <= 1 || n <= min_chunk) {
        fn(0, n);
        return;
    }
    size_t chunks = std::min(workers, (n + min_chunk - 1) / min_chunk);
    size_t per = (n + chunks - 1) / chunks;
    std::atomic<uint64_t> migrated_fr{0}, migrated_fq{0};
    std::vector<std::thread> threads;
    threads.reserve(chunks);
    for (size_t c = 0; c < chunks; ++c) {
        size_t begin = c * per;
        size_t end = std::min(n, begin + per);
        if (begin >= end) break;
        threads.emplace_back([&, begin, end] {
            // Kernels never nest parallel_for today, but if one ever
            // does, its inner loops must run inline rather than fork a
            // second level of threads.
            worker_budget() = 1;
            ModmulScope scope;
            fn(begin, end);
            migrated_fr += scope.fr_delta();
            migrated_fq += scope.fq_delta();
        });
    }
    for (auto &t : threads) t.join();
    // Migrate worker-thread counter deltas into the caller's counters.
    modmul_counters().counts[0] += migrated_fr.load();
    modmul_counters().counts[1] += migrated_fq.load();
}

/** RAII override of the worker count (tests and benches). */
class ParallelismGuard
{
  public:
    explicit ParallelismGuard(size_t n) : saved_(parallel_threads())
    {
        parallel_threads() = n;
    }
    ~ParallelismGuard() { parallel_threads() = saved_; }

  private:
    size_t saved_;
};

/**
 * RAII override of the *calling thread's* worker budget. Unlike
 * ParallelismGuard this touches no shared state, so concurrent proofs
 * on different threads can carve up the machine without racing: a pool
 * of W runtime workers on C cores gives each worker a budget of about
 * C / W and the per-proof kernels stay within it.
 */
class WorkerBudgetScope
{
  public:
    explicit WorkerBudgetScope(size_t n) : saved_(worker_budget())
    {
        worker_budget() = n;
    }
    ~WorkerBudgetScope() { worker_budget() = saved_; }

    WorkerBudgetScope(const WorkerBudgetScope &) = delete;
    WorkerBudgetScope &operator=(const WorkerBudgetScope &) = delete;

  private:
    size_t saved_;
};

}  // namespace zkspeed::ff
