/**
 * @file
 * The BLS12-381 scalar field Fr (255-bit).
 *
 * This is the field of MLE table entries and SumCheck arithmetic in
 * HyperPlonk: "all MLE datatypes are 255 bits wide" (paper Section 4).
 * r = 0x73eda753299d7d483339d80809a1d80553bda402fffe5bfeffffffff00000001.
 */
#pragma once

#include "ff/field.hpp"

namespace zkspeed::ff {

struct FrParams {
    static constexpr size_t kLimbs = 4;
    static constexpr size_t kBits = 255;
    static constexpr CounterTag kCounterTag = CounterTag::fr;

    static constexpr BigInt<4>
    modulus()
    {
        return BigInt<4>::from_hex(
            "73eda753299d7d483339d80809a1d805"
            "53bda402fffe5bfeffffffff00000001");
    }
};

/** 255-bit scalar field element. */
using Fr = Fp<FrParams>;

}  // namespace zkspeed::ff
