/**
 * @file
 * Montgomery batch inversion (Montgomery's trick).
 *
 * Computes the inverses of a batch of field elements with a single modular
 * inversion plus 3(b-1) multiplications. This is the software analogue of
 * the zkSpeed FracMLE unit (paper Section 4.4.2): the hardware overlaps the
 * partial-product chain with the BEEA inversion and uses a multiplier tree;
 * here we implement the sequential prefix-product formulation, which is the
 * reference behaviour the hardware must match.
 */
#pragma once

#include <algorithm>
#include <span>
#include <vector>

#include "ff/parallel.hpp"

namespace zkspeed::ff {

/**
 * Invert every element of a span in place.
 *
 * Zero elements are left as zero (and do not poison the batch), matching
 * the convention of Fp::inverse().
 *
 * @param xs elements to invert in place.
 */
template <typename F>
void
batch_inverse(std::span<F> xs)
{
    const size_t n = xs.size();
    if (n == 0) return;
    // prefix[i] = product of all non-zero xs[0..i]
    std::vector<F> prefix(n);
    F acc = F::one();
    for (size_t i = 0; i < n; ++i) {
        if (!xs[i].is_zero()) acc = acc * xs[i];
        prefix[i] = acc;
    }
    F inv = acc.inverse();
    // Walk backwards, peeling one inverse off the running product.
    for (size_t i = n; i-- > 0;) {
        if (xs[i].is_zero()) continue;
        F before = (i == 0) ? F::one() : prefix[i - 1];
        F x_inv = inv * before;
        inv = inv * xs[i];
        xs[i] = x_inv;
    }
}

/** Convenience overload for vectors. */
template <typename F>
void
batch_inverse(std::vector<F> &xs)
{
    batch_inverse(std::span<F>(xs));
}

/**
 * Parallel batch inversion over a FIXED 8192-element chunk grid: each
 * grid chunk runs Montgomery's trick independently (one true inversion
 * per chunk), and workers claim whole chunks. The chunk layout depends
 * only on xs.size(), never on the worker count, so both the resulting
 * values and the modmul counter totals are bit-identical across thread
 * counts (the ff::parallel_for contract).
 */
template <typename F>
void
parallel_batch_inverse(std::span<F> xs)
{
    constexpr size_t kChunk = 8192;
    if (xs.size() <= kChunk) {
        batch_inverse(xs);
        return;
    }
    const size_t nchunks = (xs.size() + kChunk - 1) / kChunk;
    parallel_for(
        nchunks,
        [&](size_t cb, size_t ce) {
            for (size_t c = cb; c < ce; ++c) {
                size_t b = c * kChunk;
                size_t e = std::min(xs.size(), b + kChunk);
                batch_inverse(xs.subspan(b, e - b));
            }
        },
        /*min_chunk=*/1);
}

/** Convenience overload for vectors. */
template <typename F>
void
parallel_batch_inverse(std::vector<F> &xs)
{
    parallel_batch_inverse(std::span<F>(xs));
}

}  // namespace zkspeed::ff
