/**
 * @file
 * The BLS12-381 base field Fq (381-bit).
 *
 * Elliptic-curve point coordinates live here: "all elliptical curve points
 * in the MSMs are 381 bits wide" (paper Section 4).
 */
#pragma once

#include "ff/field.hpp"

namespace zkspeed::ff {

struct FqParams {
    static constexpr size_t kLimbs = 6;
    static constexpr size_t kBits = 381;
    static constexpr CounterTag kCounterTag = CounterTag::fq;

    static constexpr BigInt<6>
    modulus()
    {
        return BigInt<6>::from_hex(
            "1a0111ea397fe69a4b1ba7b6434bacd7"
            "64774b84f38512bf6730d2a0f6b0f624"
            "1eabfffeb153ffffb9feffffffffaaab");
    }
};

/** 381-bit base field element. */
using Fq = Fp<FqParams>;

}  // namespace zkspeed::ff
