/**
 * @file
 * Number Theoretic Transform over the BLS12-381 scalar field.
 *
 * HyperPlonk's headline contribution is *eliminating* the NTT: protocols
 * like Groth16 interpolate/evaluate polynomials with O(n log n) NTTs,
 * while SumCheck runs in O(n) (paper Sections 1 and 9). This module
 * provides the baseline kernel so the asymptotic claim can be measured
 * directly (see bench_asymptotic_motivation).
 *
 * Fr has 2-adicity 32: r - 1 = 2^32 * odd, so radix-2 domains up to
 * 2^32 exist. The domain root is derived at runtime (an element of
 * exact order 2^32 is found by trial), avoiding transcribed constants.
 */
#pragma once

#include <cstdint>
#include <vector>

#include "ff/fr.hpp"

namespace zkspeed::ff {

class NttDomain
{
  public:
    /** Build a size-2^log_n evaluation domain. @pre log_n <= 32. */
    explicit NttDomain(size_t log_n);

    size_t size() const { return size_t(1) << log_n_; }
    size_t log_size() const { return log_n_; }
    /** The primitive 2^log_n-th root of unity used by this domain. */
    const Fr &root() const { return root_; }

    /**
     * In-place forward NTT: coefficients -> evaluations at the powers
     * of root(), natural order in and out.
     */
    void forward(std::vector<Fr> &a) const;

    /** In-place inverse NTT. */
    void inverse(std::vector<Fr> &a) const;

    /**
     * Polynomial product via the convolution theorem (result size
     * a+b-1, zero padded to the domain). Used by tests and the
     * baseline bench.
     */
    std::vector<Fr> multiply(std::vector<Fr> a, std::vector<Fr> b) const;

    /** An element of exact multiplicative order 2^32. */
    static Fr two_adic_root();

  private:
    static void transform(std::vector<Fr> &a, const Fr &w);

    size_t log_n_;
    Fr root_;
    Fr root_inv_;
    Fr size_inv_;
};

}  // namespace zkspeed::ff
