/**
 * @file
 * Generic prime field in Montgomery representation.
 *
 * Fp<Params> stores elements as a*R mod p (R = 2^{64N}) and multiplies with
 * the CIOS (coarsely integrated operand scanning) Montgomery algorithm. All
 * Montgomery constants are derived constexpr from Params::modulus() by
 * bigint.hpp helpers, so a field is fully specified by its modulus, bit
 * width and a generator (see fr.hpp / fq.hpp).
 *
 * The two instantiations used by the library are the BLS12-381 scalar field
 * (255 bits, 4 limbs) and base field (381 bits, 6 limbs), matching the MLE
 * and elliptic-curve datatypes of the paper (Section 4).
 */
#pragma once

#include <cstdint>
#include <random>
#include <string>
#include <utility>

#include "ff/bigint.hpp"
#include "ff/counters.hpp"

namespace zkspeed::ff {

namespace detail {

/** Invoke f(integral_constant<size_t, 0>) ... f(<N-1>) in order: a
 * guaranteed compile-time unroll for the CIOS limb loops, so the 4-limb
 * Fr and 6-limb Fq multipliers specialise with constant limb indices
 * and keep the accumulator row in registers. */
template <size_t N, typename F>
inline void
unroll(F &&f)
{
    [&]<size_t... Is>(std::index_sequence<Is...>) {
        (f(std::integral_constant<size_t, Is>{}), ...);
    }(std::make_index_sequence<N>{});
}

}  // namespace detail

/**
 * Prime field element in Montgomery form.
 *
 * @tparam Params policy type providing:
 *   - static constexpr size_t kLimbs
 *   - static constexpr size_t kBits (modulus bit width)
 *   - static constexpr BigInt<kLimbs> modulus()
 *   - static constexpr uint64_t kGeneratorSeed (small multiplicative gen.)
 *   - static constexpr CounterTag kCounterTag
 */
template <typename Params>
class Fp
{
  public:
    static constexpr size_t kLimbs = Params::kLimbs;
    static constexpr size_t kBits = Params::kBits;
    /** Canonical serialized size in bytes (little-endian). */
    static constexpr size_t kByteSize = kLimbs * 8;
    using Repr = BigInt<kLimbs>;

    static constexpr Repr kModulus = Params::modulus();
    /** R mod p where R = 2^{64*kLimbs}. This is the Montgomery form of 1. */
    static constexpr Repr kR = pow2_mod(64 * kLimbs, kModulus);
    /** R^2 mod p, used to convert into Montgomery form. */
    static constexpr Repr kR2 = pow2_mod(128 * kLimbs, kModulus);
    /** -p^{-1} mod 2^64 for the REDC step. */
    static constexpr uint64_t kInv = neg_inv64(kModulus.limbs[0]);

    constexpr Fp() = default;

    /** @return the additive identity. */
    static constexpr Fp zero() { return Fp(); }

    /** @return the multiplicative identity (R mod p). */
    static constexpr Fp
    one()
    {
        Fp r;
        r.repr_ = kR;
        return r;
    }

    /** Construct from a small unsigned integer. */
    static Fp
    from_uint(uint64_t v)
    {
        return from_repr(Repr(v));
    }

    /** Construct from a canonical (non-Montgomery) representation. */
    static Fp
    from_repr(const Repr &v)
    {
        Fp r;
        r.repr_ = mont_mul(v, kR2);  // v * R^2 * R^{-1} = v*R
        return r;
    }

    /** Construct from a hexadecimal string of the canonical value. */
    static Fp
    from_hex(std::string_view s)
    {
        return from_repr(Repr::from_hex(s));
    }

    /** @return the canonical (non-Montgomery) representation in [0, p). */
    Repr
    to_repr() const
    {
        return mont_mul(repr_, Repr(1));  // a*R * 1 * R^{-1} = a
    }

    /** @return the raw Montgomery-form limbs (for hashing/serialization). */
    const Repr &mont_repr() const { return repr_; }

    /** Rebuild from raw Montgomery-form limbs. */
    static Fp
    from_mont_repr(const Repr &r)
    {
        Fp x;
        x.repr_ = r;
        return x;
    }

    std::string to_hex() const { return to_repr().to_hex(); }

    constexpr bool operator==(const Fp &o) const = default;
    bool is_zero() const { return repr_.is_zero(); }
    bool is_one() const { return repr_ == kR; }

    Fp
    operator+(const Fp &o) const
    {
        Fp r;
        r.repr_ = mod_add(repr_, o.repr_, kModulus);
        return r;
    }

    Fp
    operator-(const Fp &o) const
    {
        Fp r;
        r.repr_ = mod_sub(repr_, o.repr_, kModulus);
        return r;
    }

    Fp
    operator-() const
    {
        Fp r;
        if (!repr_.is_zero()) {
            r.repr_ = kModulus;
            r.repr_.sub_assign(repr_);
        }
        return r;
    }

    Fp
    operator*(const Fp &o) const
    {
        Fp r;
        r.repr_ = mont_mul(repr_, o.repr_);
        ++modmul_counters().counts[(int)Params::kCounterTag];
        return r;
    }

    Fp &operator+=(const Fp &o) { return *this = *this + o; }
    Fp &operator-=(const Fp &o) { return *this = *this - o; }
    Fp &operator*=(const Fp &o) { return *this = *this * o; }

    /** Modular squaring (counted as one modmul). */
    Fp square() const { return *this * *this; }

    /** In-place doubling. */
    Fp
    dbl() const
    {
        Fp r;
        r.repr_ = mod_add(repr_, repr_, kModulus);
        return r;
    }

    /**
     * Exponentiation by a canonical big integer (square-and-multiply,
     * MSB first).
     */
    template <size_t M>
    Fp
    pow(const BigInt<M> &e) const
    {
        Fp r = one();
        size_t bits = e.num_bits();
        for (size_t i = bits; i-- > 0;) {
            r = r.square();
            if (e.bit(i)) r = r * *this;
        }
        return r;
    }

    Fp
    pow(uint64_t e) const
    {
        return pow(BigInt<1>(e));
    }

    /**
     * Multiplicative inverse via Fermat's little theorem (a^{p-2}).
     * @pre *this != 0. Returns 0 for 0 (projective-code convenience).
     */
    Fp
    inverse() const
    {
        Repr pm2 = kModulus;
        pm2.sub_assign(Repr(2));
        return pow(pm2);
    }

    /**
     * Multiplicative inverse via the binary extended Euclidean algorithm on
     * the canonical representation. Functionally identical to inverse();
     * kept as an independently-tested reference for the constant-time BEEA
     * datapath the FracMLE unit models (paper Section 4.4.1, 2W-1 = 509
     * iterations for W = 255).
     */
    Fp
    inverse_beea() const
    {
        if (is_zero()) return zero();
        // Binary extended gcd maintaining the invariants
        //   x * a == u (mod p)   and   y * a == v (mod p).
        // On termination u == 0 and v == gcd(a, p) == 1, hence y = a^{-1}.
        Repr u = to_repr();
        Repr v = kModulus;
        Fp x = one(), y = zero();
        Fp half = two_inverse();
        while (!u.is_zero()) {
            while (!u.is_odd()) {  // u != 0, so this terminates
                u.shr1();
                x = x * half;
            }
            while (!v.is_odd()) {  // v stays positive and reaches odd
                v.shr1();
                y = y * half;
            }
            if (u >= v) {
                u.sub_assign(v);
                x = x - y;
            } else {
                v.sub_assign(u);
                y = y - x;
            }
        }
        return y;
    }

    /** Draw a uniformly random field element. */
    template <typename Rng>
    static Fp
    random(Rng &rng)
    {
        std::uniform_int_distribution<uint64_t> dist;
        for (;;) {
            Repr r;
            for (size_t i = 0; i < kLimbs; ++i) r.limbs[i] = dist(rng);
            // Mask excess top bits to make rejection cheap.
            size_t excess = 64 * kLimbs - kBits;
            if (excess > 0) r.limbs[kLimbs - 1] >>= excess;
            if (r < kModulus) {
                Fp x;
                x.repr_ = mont_mul(r, kR2);
                return x;
            }
        }
    }

    /** Serialize canonical form, little-endian, kByteSize bytes. */
    void
    to_bytes(uint8_t *out) const
    {
        Repr r = to_repr();
        for (size_t i = 0; i < kLimbs; ++i) {
            for (size_t b = 0; b < 8; ++b) {
                out[i * 8 + b] = (uint8_t)(r.limbs[i] >> (8 * b));
            }
        }
    }

    /**
     * Deserialize a little-endian byte string; the value is reduced mod p
     * (used for hash-to-field in the transcript).
     */
    static Fp
    from_bytes_reduce(const uint8_t *in, size_t len)
    {
        // Horner over 64-bit words with Montgomery-domain arithmetic.
        Fp acc = zero();
        Fp shift = from_repr(pow2_mod(64, kModulus));
        size_t words = (len + 7) / 8;
        for (size_t i = words; i-- > 0;) {
            uint64_t w = 0;
            for (size_t b = 0; b < 8 && i * 8 + b < len; ++b) {
                w |= (uint64_t)in[i * 8 + b] << (8 * b);
            }
            acc = acc * shift + from_uint(w);
        }
        return acc;
    }

  private:
    /** 1/2 mod p in Montgomery form (p odd, so (p+1)/2). */
    static Fp
    two_inverse()
    {
        Repr h = kModulus;
        h.add_assign(Repr(1));
        h.shr1();
        return from_repr(h);
    }

    /**
     * CIOS Montgomery multiplication: returns a*b*R^{-1} mod p.
     *
     * Both limb loops are unrolled at compile time (detail::unroll) and
     * the multiply and REDC passes are fused per outer limb, so each
     * instantiation (4-limb Fr, 6-limb Fq) compiles to a straight-line
     * chain of 64x64->128 multiplies with the accumulator row held in
     * registers: t[j] + a_i*b[j] + m_i*p[j] with two carry chains, where
     * m_i = (t[0] + a_i*b[0]) * (-p^{-1}) mod 2^64.
     */
    static Repr
    mont_mul(const Repr &a, const Repr &b)
    {
        constexpr size_t n = kLimbs;
        uint64_t t[n + 1] = {0};
        detail::unroll<n>([&](auto i) {
            const uint64_t a_i = a.limbs[i];
            // m is derived from t[0] after adding a_i*b[0]; the fused
            // pass then guarantees the low limb reduces to zero.
            uint128 s0 = (uint128)a_i * b.limbs[0] + t[0];
            const uint64_t m = (uint64_t)s0 * kInv;
            uint128 r0 = (uint128)m * kModulus.limbs[0] + (uint64_t)s0;
            uint64_t carry_ab = (uint64_t)(s0 >> 64);
            uint64_t carry_mp = (uint64_t)(r0 >> 64);
            detail::unroll<n - 1>([&](auto jm) {
                constexpr size_t j = jm + 1;
                uint128 s = (uint128)a_i * b.limbs[j] + t[j] + carry_ab;
                carry_ab = (uint64_t)(s >> 64);
                uint128 r = (uint128)m * kModulus.limbs[j] + (uint64_t)s +
                            carry_mp;
                t[j - 1] = (uint64_t)r;
                carry_mp = (uint64_t)(r >> 64);
            });
            uint128 top = (uint128)t[n] + carry_ab + carry_mp;
            t[n - 1] = (uint64_t)top;
            t[n] = (uint64_t)(top >> 64);
        });
        Repr r;
        detail::unroll<n>([&](auto i) { r.limbs[i] = t[i]; });
        if (t[n] != 0 || r >= kModulus) r.sub_assign(kModulus);
        return r;
    }

    Repr repr_{};
};

}  // namespace zkspeed::ff
