/**
 * @file
 * Global instrumentation counters for modular multiplications.
 *
 * Table 1 of the zkSpeed paper characterises HyperPlonk kernels by modmul
 * count and arithmetic intensity (modmuls per byte). Every Montgomery
 * multiplication performed by the library increments one of these counters,
 * letting the Table-1 benchmark measure the real kernel costs of our own
 * prover. The single-add overhead is negligible next to a 4x4 or 6x6 limb
 * multiply.
 */
#pragma once

#include <cstdint>

namespace zkspeed::ff {

/** Counter indices per base field. */
enum class CounterTag : int {
    fr = 0,   ///< 255-bit scalar-field multiplications
    fq = 1,   ///< 381-bit base-field multiplications
};

struct ModmulCounters {
    uint64_t counts[2] = {0, 0};

    uint64_t fr() const { return counts[0]; }
    uint64_t fq() const { return counts[1]; }
    uint64_t total() const { return counts[0] + counts[1]; }
    void reset() { counts[0] = counts[1] = 0; }
};

/** Thread-local counter instance used by all field multiplications. */
inline ModmulCounters &
modmul_counters()
{
    thread_local ModmulCounters c;
    return c;
}

/**
 * RAII scope that snapshots the counters on entry and exposes the delta.
 * Used by the kernel-profiling benches.
 */
class ModmulScope
{
  public:
    ModmulScope() : start_(modmul_counters()) {}

    uint64_t
    fr_delta() const
    {
        return modmul_counters().fr() - start_.fr();
    }

    uint64_t
    fq_delta() const
    {
        return modmul_counters().fq() - start_.fq();
    }

    uint64_t total_delta() const { return fr_delta() + fq_delta(); }

  private:
    ModmulCounters start_;
};

}  // namespace zkspeed::ff
